//! The daemon: TCP accept loop, sharded dispatch, per-connection ordered
//! writers, batched telemetry flushes, and the always-on flight recorder.
//!
//! Thread shape (all scoped, all `std`):
//!
//! ```text
//! accept loop ──spawns──▶ connection reader ──┐ (Job via mpsc)
//!                                             ▼
//!                               shard workers 0..N  (one queue each)
//!                                             │ (seq, line)
//!                                             ▼
//!                         per-connection writer (reorders by seq)
//! ```
//!
//! Determinism across shard counts: a request is assigned to shard
//! `program_hash % shards` (conform: `seed % shards`), but a shard never
//! contributes anything to a response — it only decides *where* the pure
//! function [`ops::execute`] runs, and the per-connection writer restores
//! request order with sequence numbers. Changing `--shards` therefore
//! changes scheduling, never bytes; `bench --serve` hard-fails if that
//! ever stops being true. The same discipline extends to telemetry: the
//! flight recorder and per-shard metric registries observe requests, they
//! never touch response bytes, so recording is always on.
//!
//! Failure containment: a worker wraps request execution in
//! `catch_unwind`, so a panicking request yields a `serve-err-v1` response
//! of kind `panic` and the shard lives on — and the daemon drains the
//! flight recorder into a `flight-v1` black-box dump (same for a
//! configurable streak of budget-exceeded responses, and on demand via
//! the `dump` op for external triggers like a sentinel-drift alarm).
//! Budget violations and simulation faults are ordinary error responses
//! from [`ops::execute`].

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use liquid_simd_perfhist::Json;
use liquid_simd_trace::{FlightEvent, FlightRecorder, FlightStage, Metrics};

use crate::cache::{BuildCache, CacheEntry, ProgramEntry, TranslationCache};
use crate::fnv1a;
use crate::inspect;
use crate::ops::{self, OpOutput};
use crate::proto::{self, Op, Request};
use crate::record::{BatchStats, CacheStats, Determinism};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker shard count (floored to 1).
    pub shards: usize,
    /// History file for `perfhist-serve-v1` batch records (`None` = no
    /// telemetry).
    pub history: Option<PathBuf>,
    /// Flush a batch record every this many requests (`0` = only the
    /// final flush at shutdown).
    pub history_every: usize,
    /// Execution backend every shard simulates with (`serve --backend`).
    /// Simulation results are backend-independent, so this only changes
    /// daemon throughput (and the backend tag in `explain` output).
    pub backend: liquid_simd::BackendKind,
    /// Per-shard flight-recorder ring capacity in events (`0` disables
    /// recording — the overhead-measurement escape hatch; the recorder is
    /// otherwise always on).
    pub flight_capacity: usize,
    /// Directory receiving `flight-v1` dump files (`None` = incidents are
    /// still contained, just not dumped).
    pub flight_dir: Option<PathBuf>,
    /// Honor test-only `"inject"` request fields (`serve --inject-faults`)
    /// — off by default so production daemons cannot be panicked remotely.
    pub inject_faults: bool,
    /// Dump the flight recorder after this many *consecutive*
    /// budget-exceeded responses (`0` disables the burst trigger).
    pub burst_threshold: u64,
    /// Translation-cache entry bound (`0` = unbounded; see
    /// [`TranslationCache::with_capacity`]).
    pub cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            history: None,
            history_every: 0,
            backend: liquid_simd::BackendKind::Interp,
            flight_capacity: liquid_simd_trace::DEFAULT_FLIGHT_CAPACITY,
            flight_dir: None,
            inject_faults: false,
            burst_threshold: 8,
            cache_capacity: 0,
        }
    }
}

/// What a daemon did with its life, returned when it exits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeSummary {
    /// Requests answered (errors included, stats/shutdown included).
    pub requests: u64,
    /// `serve-err-v1` responses.
    pub errors: u64,
    /// Translation-cache hits.
    pub cache_hits: u64,
    /// Translation-cache misses.
    pub cache_misses: u64,
    /// History records appended.
    pub records_appended: u64,
    /// `flight-v1` dump files written.
    pub dumps: u64,
    /// Final determinism hashes (requests, responses) and cycle total.
    pub determinism: (u64, u64, u64),
}

/// Per-shard telemetry: request tallies, this shard's contribution to the
/// translation cache, and a metric registry (counters + histograms)
/// merged from every request the shard answered. Registries merge across
/// shards in ascending shard order for the `inspect` snapshot.
#[derive(Default)]
struct ShardStat {
    requests: AtomicU64,
    errors: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    metrics: Mutex<Metrics>,
}

/// Shared daemon state.
struct State {
    opts: ServeOptions,
    builds: BuildCache,
    cache: TranslationCache,
    recorder: FlightRecorder,
    shard_stats: Vec<ShardStat>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    req_hash: AtomicU64,
    resp_hash: AtomicU64,
    sim_cycles: AtomicU64,
    records_appended: AtomicU64,
    dumps: AtomicU64,
    budget_streak: AtomicU64,
    ops_total: Mutex<BTreeMap<String, u64>>,
    batch: Mutex<Batch>,
    started: Instant,
}

struct Batch {
    requests: u64,
    errors: u64,
    by_op: BTreeMap<String, u64>,
    latencies_us: Vec<u64>,
    started: Instant,
}

impl Batch {
    fn new() -> Batch {
        Batch {
            requests: 0,
            errors: 0,
            by_op: BTreeMap::new(),
            latencies_us: Vec::new(),
            started: Instant::now(),
        }
    }
}

impl State {
    fn new(opts: ServeOptions) -> State {
        let shards = opts.shards.max(1);
        State {
            recorder: FlightRecorder::new(shards, opts.flight_capacity, opts.backend.name()),
            shard_stats: (0..shards).map(|_| ShardStat::default()).collect(),
            cache: TranslationCache::with_capacity(opts.cache_capacity),
            opts,
            builds: BuildCache::default(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            req_hash: AtomicU64::new(0),
            resp_hash: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            records_appended: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            budget_streak: AtomicU64::new(0),
            ops_total: Mutex::new(BTreeMap::new()),
            batch: Mutex::new(Batch::new()),
            started: Instant::now(),
        }
    }

    /// Tallies one answered request into the cumulative counters and the
    /// current batch, then flushes the batch if it reached the configured
    /// size. `op` is the op name (or `"invalid"` for unparseable lines).
    fn tally(&self, op: &str, ok: bool, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        *self
            .ops_total
            .lock()
            .expect("ops_total poisoned")
            .entry(op.to_string())
            .or_insert(0) += 1;
        let flush_now = {
            let mut batch = self.batch.lock().expect("batch poisoned");
            batch.requests += 1;
            if !ok {
                batch.errors += 1;
            }
            *batch.by_op.entry(op.to_string()).or_insert(0) += 1;
            batch.latencies_us.push(latency_us);
            self.opts.history_every > 0 && batch.requests >= self.opts.history_every as u64
        };
        if flush_now {
            self.flush_batch();
        }
    }

    /// Appends one `perfhist-serve-v1` record covering the current batch
    /// (no-op when the batch is empty or telemetry is off) and starts a
    /// fresh batch.
    fn flush_batch(&self) {
        let Some(history) = self.opts.history.clone() else {
            return;
        };
        let taken = {
            let mut batch = self.batch.lock().expect("batch poisoned");
            if batch.requests == 0 {
                return;
            }
            std::mem::replace(&mut *batch, Batch::new())
        };
        let stats = BatchStats {
            requests: taken.requests,
            errors: taken.errors,
            by_op: taken.by_op,
            latencies_us: taken.latencies_us,
            wall_s: taken.started.elapsed().as_secs_f64(),
        };
        let (hits, misses, entries) = self.cache.stats();
        let rec = crate::record::build(
            self.opts.shards,
            &stats,
            &CacheStats {
                hits,
                misses,
                entries,
            },
            &Determinism {
                requests_hash: self.req_hash.load(Ordering::Relaxed),
                responses_hash: self.resp_hash.load(Ordering::Relaxed),
                sim_cycles_total: self.sim_cycles.load(Ordering::Relaxed),
            },
        );
        match liquid_simd_perfhist::store::append(&history, &rec) {
            Ok(()) => {
                self.records_appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!("liquid-simd serve: history append failed: {e}"),
        }
    }

    fn stats_body(&self) -> String {
        let (hits, misses, entries) = self.cache.stats();
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let per_shard: Vec<Json> = self
            .shard_stats
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::Obj(vec![
                    ("shard".to_string(), Json::u64(i as u64)),
                    (
                        "requests".to_string(),
                        Json::u64(s.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors".to_string(),
                        Json::u64(s.errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "cache".to_string(),
                        Json::Obj(vec![
                            (
                                "hits".to_string(),
                                Json::u64(s.hits.load(Ordering::Relaxed)),
                            ),
                            (
                                "misses".to_string(),
                                Json::u64(s.misses.load(Ordering::Relaxed)),
                            ),
                            (
                                "inserts".to_string(),
                                Json::u64(s.inserts.load(Ordering::Relaxed)),
                            ),
                            (
                                "evictions".to_string(),
                                Json::u64(s.evictions.load(Ordering::Relaxed)),
                            ),
                        ]),
                    ),
                ])
            })
            .collect();
        proto::ok_body(
            Op::Stats,
            vec![
                (
                    "backend".to_string(),
                    Json::Str(self.opts.backend.name().to_string()),
                ),
                ("shards".to_string(), Json::u64(self.opts.shards as u64)),
                (
                    "requests".to_string(),
                    Json::u64(self.requests.load(Ordering::Relaxed)),
                ),
                (
                    "errors".to_string(),
                    Json::u64(self.errors.load(Ordering::Relaxed)),
                ),
                (
                    "cache".to_string(),
                    Json::Obj(vec![
                        ("hits".to_string(), Json::u64(hits)),
                        ("misses".to_string(), Json::u64(misses)),
                        ("entries".to_string(), Json::u64(entries)),
                        ("capacity".to_string(), Json::u64(self.cache.capacity())),
                        ("generation".to_string(), Json::u64(self.cache.generation())),
                        ("evictions".to_string(), Json::u64(self.cache.evictions())),
                        ("hit_rate".to_string(), Json::f64(hit_rate)),
                    ]),
                ),
                ("builds".to_string(), Json::u64(self.builds.len() as u64)),
                ("per_shard".to_string(), Json::Arr(per_shard)),
            ],
        )
    }

    /// The `metrics-v1` snapshot behind the `inspect` op: cumulative
    /// counters, per-shard registries merged in ascending shard order,
    /// cache and flight-recorder state. Built before the inspect request
    /// itself is tallied, so a snapshot after a fixed load reflects
    /// exactly that load.
    fn inspect_body(&self) -> String {
        let (hits, misses, entries) = self.cache.stats();
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let by_op: Vec<(String, Json)> = self
            .ops_total
            .lock()
            .expect("ops_total poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), Json::u64(v)))
            .collect();
        // Deterministic merge order: ascending shard index. Counter and
        // bucket addition is commutative, so the merged registry is also
        // independent of how requests were scheduled onto shards.
        let mut merged = Metrics::new();
        for s in &self.shard_stats {
            merged.merge(&s.metrics.lock().expect("shard metrics poisoned"));
        }
        let (counters, histograms) = inspect::registry_json(&merged);
        let doc = Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(inspect::METRICS_SCHEMA.to_string()),
            ),
            (
                "backend".to_string(),
                Json::Str(self.opts.backend.name().to_string()),
            ),
            ("shards".to_string(), Json::u64(self.opts.shards as u64)),
            (
                "uptime_us".to_string(),
                Json::u64(self.started.elapsed().as_micros() as u64),
            ),
            (
                "requests".to_string(),
                Json::Obj(vec![
                    (
                        "total".to_string(),
                        Json::u64(self.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors".to_string(),
                        Json::u64(self.errors.load(Ordering::Relaxed)),
                    ),
                    ("by_op".to_string(), Json::Obj(by_op)),
                ]),
            ),
            (
                "determinism".to_string(),
                Json::Obj(vec![
                    (
                        "requests_hash".to_string(),
                        Json::u64(self.req_hash.load(Ordering::Relaxed)),
                    ),
                    (
                        "responses_hash".to_string(),
                        Json::u64(self.resp_hash.load(Ordering::Relaxed)),
                    ),
                    (
                        "sim_cycles_total".to_string(),
                        Json::u64(self.sim_cycles.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    ("builds".to_string(), Json::u64(self.builds.len() as u64)),
                    (
                        "translations".to_string(),
                        Json::Obj(vec![
                            ("entries".to_string(), Json::u64(entries)),
                            ("capacity".to_string(), Json::u64(self.cache.capacity())),
                            ("generation".to_string(), Json::u64(self.cache.generation())),
                            ("evictions".to_string(), Json::u64(self.cache.evictions())),
                            ("hits".to_string(), Json::u64(hits)),
                            ("misses".to_string(), Json::u64(misses)),
                            ("hit_rate".to_string(), Json::f64(hit_rate)),
                        ]),
                    ),
                ]),
            ),
            (
                "flight".to_string(),
                Json::Obj(vec![
                    (
                        "capacity".to_string(),
                        Json::u64(self.recorder.capacity() as u64),
                    ),
                    ("events".to_string(), Json::u64(self.recorder.events())),
                    ("dropped".to_string(), Json::u64(self.recorder.dropped())),
                    (
                        "contended".to_string(),
                        Json::u64(self.recorder.contended()),
                    ),
                ]),
            ),
            ("counters".to_string(), counters),
            ("histograms".to_string(), histograms),
        ]);
        proto::ok_body(Op::Inspect, vec![("metrics".to_string(), doc)])
    }

    /// Drains the flight recorder into `flight-<n>-<reason>.jsonl` (plus a
    /// `.folded` flamegraph sidecar) under the configured dump directory.
    fn dump_flight(&self, reason: &str) -> Result<(PathBuf, u64), String> {
        let dir = self.opts.flight_dir.clone().ok_or_else(|| {
            "no flight dump directory configured (serve --flight-dir)".to_string()
        })?;
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let records = self.recorder.drain();
        let idx = self.dumps.fetch_add(1, Ordering::Relaxed);
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("flight-{idx:03}-{slug}.jsonl"));
        std::fs::write(&path, self.recorder.dump(reason, &records))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        let folded = liquid_simd_trace::flight::folded_events("serve", &records);
        let folded_path = path.with_extension("folded");
        std::fs::write(&folded_path, folded)
            .map_err(|e| format!("write {}: {e}", folded_path.display()))?;
        Ok((path, records.len() as u64))
    }

    fn summary(&self) -> ServeSummary {
        let (hits, misses, _) = self.cache.stats();
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            records_appended: self.records_appended.load(Ordering::Relaxed),
            dumps: self.dumps.load(Ordering::Relaxed),
            determinism: (
                self.req_hash.load(Ordering::Relaxed),
                self.resp_hash.load(Ordering::Relaxed),
                self.sim_cycles.load(Ordering::Relaxed),
            ),
        }
    }
}

/// The request id as flight-event text (numbers render raw, no id = "").
fn id_text(id: Option<&Json>) -> String {
    match id {
        None => String::new(),
        Some(Json::Str(s)) => s.clone(),
        Some(other) => other.write(),
    }
}

/// One unit of shard work: a resolved request plus its reply route.
struct Job {
    seq: u64,
    req: Request,
    program: Option<Arc<ProgramEntry>>,
    key: String,
    arrived: Instant,
    reply: mpsc::Sender<(u64, String)>,
}

/// A running daemon.
pub struct ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub addr: SocketAddr,
    join: std::thread::JoinHandle<ServeSummary>,
    state: Arc<State>,
}

impl ServerHandle {
    /// Requests shutdown without a client connection (same effect as a
    /// `shutdown` op).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits for the daemon to exit and returns its lifetime summary.
    ///
    /// # Errors
    ///
    /// Reports a panicked daemon thread (which would be a bug — workers
    /// contain panics).
    pub fn join(self) -> Result<ServeSummary, String> {
        self.join
            .join()
            .map_err(|_| "serve daemon thread panicked".to_string())
    }
}

/// Binds `opts.addr` and starts the daemon on a background thread.
///
/// # Errors
///
/// Returns a message if the address cannot be bound.
pub fn spawn(opts: ServeOptions) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let shards = opts.shards.max(1);
    let state = Arc::new(State::new(ServeOptions { shards, ..opts }));
    let thread_state = Arc::clone(&state);
    let join = std::thread::spawn(move || run_loop(&listener, &thread_state));
    Ok(ServerHandle { addr, join, state })
}

/// Binds, serves until shutdown, and returns the summary — the blocking
/// form the CLI `serve` command uses.
///
/// # Errors
///
/// Returns a message if the address cannot be bound.
pub fn serve_blocking(opts: ServeOptions) -> Result<ServeSummary, String> {
    spawn(opts)?.join()
}

fn run_loop(listener: &TcpListener, state: &Arc<State>) -> ServeSummary {
    let shards = state.opts.shards;
    let mut senders = Vec::with_capacity(shards);
    let mut receivers = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel::<Job>();
        senders.push(tx);
        receivers.push(rx);
    }
    std::thread::scope(|scope| {
        for (shard, rx) in receivers.into_iter().enumerate() {
            scope.spawn(move || shard_worker(rx, shard, state));
        }
        loop {
            if state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let txs = senders.clone();
                    scope.spawn(|| connection(stream, txs, state));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    eprintln!("liquid-simd serve: accept failed: {e}");
                    break;
                }
            }
        }
        // Closing the original senders lets each shard drain its queue and
        // exit once the connection threads (which hold clones) finish.
        drop(senders);
    });
    state.flush_batch();
    state.summary()
}

fn shard_worker(rx: mpsc::Receiver<Job>, shard: usize, state: &State) {
    while let Ok(job) = rx.recv() {
        let (entry, fresh) = answer(&job, shard, state);
        let output = &entry.output;
        let latency = job.arrived.elapsed().as_micros() as u64;
        // Stats/shutdown never reach a shard, so every job here is a
        // deterministic op: fold it into the determinism accumulators.
        // Wrapping sums (not XOR) so the multiset hash is both
        // order-independent and multiplicity-sensitive — N clients
        // repeating one request must not cancel out of the hash.
        state
            .req_hash
            .fetch_add(fnv1a(job.key.as_bytes()), Ordering::Relaxed);
        let mut pair = job.key.clone().into_bytes();
        pair.extend_from_slice(output.body.as_bytes());
        state.resp_hash.fetch_add(fnv1a(&pair), Ordering::Relaxed);
        state.sim_cycles.fetch_add(output.cycles, Ordering::Relaxed);
        // Per-shard telemetry. The counter snapshot inside the entry is a
        // pure function of the request, so merging it per *request* (hit
        // or miss alike) keeps the merged registry independent of shard
        // count and cache schedule.
        let stat = &state.shard_stats[shard];
        stat.requests.fetch_add(1, Ordering::Relaxed);
        if !output.ok {
            stat.errors.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut m = stat.metrics.lock().expect("shard metrics poisoned");
            for (name, &v) in &output.counters {
                m.add(&format!("sim.{name}"), v);
            }
            m.observe("request.cycles", output.cycles, &inspect::cycle_bounds());
            m.observe("wall.latency_us", latency, &inspect::latency_bounds());
        }
        state.recorder.record(
            shard,
            FlightEvent::new(
                &id_text(job.req.id.as_ref()),
                job.req.op.name(),
                FlightStage::Respond,
            )
            .ok(output.ok)
            .detail(&output.kind)
            .cycles(output.cycles)
            .generation(state.cache.generation()),
        );
        // Black-box triggers. A panic entry dumps only when freshly
        // computed — a cache hit on an old panic is not a new incident.
        if fresh && output.kind == "panic" {
            report_dump(state, state.dump_flight("worker-panic"), "worker panic");
        }
        if output.kind == "budget-exceeded" {
            let streak = state.budget_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if state.opts.burst_threshold > 0 && streak == state.opts.burst_threshold {
                report_dump(state, state.dump_flight("budget-burst"), "budget burst");
            }
        } else {
            state.budget_streak.store(0, Ordering::Relaxed);
        }
        state.tally(job.req.op.name(), output.ok, latency);
        let line = proto::with_id(&output.body, job.req.id.as_ref());
        // A dropped receiver means the client went away; nothing to do.
        let _ = job.reply.send((job.seq, line));
    }
}

/// Logs a dump attempt's outcome without failing the request path.
fn report_dump(state: &State, result: Result<(PathBuf, u64), String>, what: &str) {
    let _ = state;
    match result {
        Ok((path, events)) => {
            eprintln!(
                "liquid-simd serve: {what}: dumped {events} flight events to {}",
                path.display()
            );
        }
        Err(e) => eprintln!("liquid-simd serve: {what}: flight dump skipped: {e}"),
    }
}

/// Computes (or cache-hits) the response for one shard job, containing
/// any panic as a `serve-err-v1` of kind `panic`. Returns the entry and
/// whether it was freshly computed (false = translation-cache hit).
fn answer(job: &Job, shard: usize, state: &State) -> (Arc<CacheEntry>, bool) {
    let id = id_text(job.req.id.as_ref());
    let op = job.req.op.name();
    let stat = &state.shard_stats[shard];
    let probe_gen = state.cache.generation();
    if let Some(hit) = state.cache.lookup(&job.key) {
        stat.hits.fetch_add(1, Ordering::Relaxed);
        state.recorder.record(
            shard,
            FlightEvent::new(&id, op, FlightStage::Probe)
                .detail("hit")
                .generation(probe_gen),
        );
        return (hit, false);
    }
    stat.misses.fetch_add(1, Ordering::Relaxed);
    state.recorder.record(
        shard,
        FlightEvent::new(&id, op, FlightStage::Probe)
            .detail("miss")
            .generation(probe_gen),
    );
    state
        .recorder
        .record(shard, FlightEvent::new(&id, op, FlightStage::Translate));
    let computed = catch_unwind(AssertUnwindSafe(|| match &job.program {
        Some(entry) => {
            let output = ops::execute_with_backend(
                &job.req,
                &entry.program,
                &entry.name,
                state.opts.backend,
            );
            // Retain the translated microcode alongside the rendered
            // response: this entry *is* the service's microcode cache
            // line, preloadable by a future execution layer.
            let micro = if job.req.op == Op::Translate && output.ok {
                snapshot_microcode(&entry.program, job.req.lanes)
            } else {
                Vec::new()
            };
            CacheEntry {
                output,
                microcode: micro,
            }
        }
        // Conform carries no program; execute() never reads the
        // placeholder.
        None => CacheEntry {
            output: ops::execute_with_backend(
                &job.req,
                &ops::assemble_inline(".text\nmain:\n    halt\n")
                    .expect("placeholder program assembles"),
                "<none>",
                state.opts.backend,
            ),
            microcode: Vec::new(),
        },
    }));
    let entry = match computed {
        Ok(entry) => {
            state.recorder.record(
                shard,
                FlightEvent::new(&id, op, FlightStage::Execute)
                    .ok(entry.output.ok)
                    .detail(state.opts.backend.name())
                    .cycles(entry.output.cycles),
            );
            entry
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            state.recorder.record(
                shard,
                FlightEvent::new(&id, op, FlightStage::Panic)
                    .ok(false)
                    .detail(msg),
            );
            CacheEntry {
                output: OpOutput {
                    body: proto::err_body(Some(job.req.op), "panic", msg),
                    ok: false,
                    cycles: 0,
                    kind: "panic".to_string(),
                    counters: BTreeMap::new(),
                },
                microcode: Vec::new(),
            }
        }
    };
    let (arc, inserted, evicted) = state.cache.insert(&job.key, entry);
    if inserted {
        stat.inserts.fetch_add(1, Ordering::Relaxed);
    }
    stat.evictions.fetch_add(evicted, Ordering::Relaxed);
    (arc, true)
}

fn snapshot_microcode(
    program: &liquid_simd_isa::Program,
    lanes: usize,
) -> Vec<(u32, Vec<liquid_simd_isa::Inst>)> {
    let mut machine = liquid_simd::Machine::new(program, liquid_simd::MachineConfig::liquid(lanes));
    match machine.run() {
        Ok(_) => machine.microcode_snapshot(),
        Err(_) => Vec::new(),
    }
}

/// Reads request lines, resolves programs, dispatches to shards, and
/// joins its ordered writer before returning.
fn connection(stream: TcpStream, shard_txs: Vec<mpsc::Sender<Job>>, state: &State) {
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, String)>();
    let writer = std::thread::spawn(move || ordered_writer(write_stream, &reply_rx));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seq: u64 = 0;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    handle_line(
                        line.trim_end_matches(['\r', '\n']),
                        seq,
                        &shard_txs,
                        state,
                        &reply_tx,
                    );
                    seq += 1;
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `read_line` preserves bytes already appended to `line`,
                // so retrying cannot tear a request across reads.
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(reply_tx);
    drop(shard_txs);
    // Joining the writer blocks until every in-flight job for this
    // connection has replied and been flushed.
    let _ = writer.join();
}

/// Parses one request line and routes it: immediate front-end answers for
/// stats/inspect/dump/shutdown/bad requests, shard dispatch for
/// deterministic ops. Front-end lifecycle events land on shard ring 0
/// (they have no shard of their own); dispatched requests record their
/// accept/parse/build events on their destination shard's ring so an
/// incident dump shows each request's full story in one place.
fn handle_line(
    line: &str,
    seq: u64,
    shard_txs: &[mpsc::Sender<Job>],
    state: &State,
    reply_tx: &mpsc::Sender<(u64, String)>,
) {
    let arrived = Instant::now();
    let front = |body: String, id: Option<&Json>, op: &str, ok: bool| {
        state.recorder.record(
            0,
            FlightEvent::new(&id_text(id), op, FlightStage::Respond).ok(ok),
        );
        state.tally(op, ok, arrived.elapsed().as_micros() as u64);
        let _ = reply_tx.send((seq, proto::with_id(&body, id)));
    };
    let req = match proto::parse_request(line) {
        Ok(req) => req,
        Err(msg) => {
            state.recorder.record(
                0,
                FlightEvent::new("", "invalid", FlightStage::Parse)
                    .ok(false)
                    .detail(&msg),
            );
            front(
                proto::err_body(None, "bad-request", &msg),
                None,
                "invalid",
                false,
            );
            return;
        }
    };
    if req.inject_panic && !state.opts.inject_faults {
        front(
            proto::err_body(
                Some(req.op),
                "bad-request",
                "fault injection is disabled (start the daemon with --inject-faults)",
            ),
            req.id.as_ref(),
            req.op.name(),
            false,
        );
        return;
    }
    match req.op {
        Op::Stats => front(state.stats_body(), req.id.as_ref(), Op::Stats.name(), true),
        Op::Inspect => {
            // Render before tallying: the snapshot reflects every request
            // answered so far, not itself.
            let body = state.inspect_body();
            front(body, req.id.as_ref(), Op::Inspect.name(), true);
        }
        Op::Dump => {
            let reason = req.reason.clone().unwrap_or_else(|| "manual".to_string());
            match state.dump_flight(&reason) {
                Ok((path, events)) => front(
                    proto::ok_body(
                        Op::Dump,
                        vec![
                            ("reason".to_string(), Json::Str(reason)),
                            ("path".to_string(), Json::Str(path.display().to_string())),
                            ("events".to_string(), Json::u64(events)),
                        ],
                    ),
                    req.id.as_ref(),
                    Op::Dump.name(),
                    true,
                ),
                Err(msg) => front(
                    proto::err_body(Some(Op::Dump), "no-flight-dir", &msg),
                    req.id.as_ref(),
                    Op::Dump.name(),
                    false,
                ),
            }
        }
        Op::Shutdown => {
            state.shutdown.store(true, Ordering::Relaxed);
            front(
                proto::ok_body(Op::Shutdown, Vec::new()),
                req.id.as_ref(),
                Op::Shutdown.name(),
                true,
            );
        }
        Op::Translate | Op::Run | Op::Explain | Op::Conform => {
            let program = if req.op == Op::Conform {
                None
            } else {
                let resolved = match (&req.workload, &req.program) {
                    (Some(name), _) => state.builds.workload(name),
                    (None, Some(src)) => state.builds.inline(src, req.name.as_deref()),
                    (None, None) => Err("missing program".to_string()),
                };
                match resolved {
                    Ok(entry) => Some(entry),
                    Err(msg) => {
                        state.recorder.record(
                            0,
                            FlightEvent::new(
                                &id_text(req.id.as_ref()),
                                req.op.name(),
                                FlightStage::Build,
                            )
                            .ok(false)
                            .detail(&msg),
                        );
                        front(
                            proto::err_body(Some(req.op), "bad-request", &msg),
                            req.id.as_ref(),
                            req.op.name(),
                            false,
                        );
                        return;
                    }
                }
            };
            let prog_hash = program.as_ref().map_or(req.seed, |p| p.hash);
            let cfg_hash = ops::machine_config(req.mode, req.lanes, req.jit).fingerprint();
            let key = proto::canonical_key(&req, prog_hash, cfg_hash);
            let shard = (prog_hash % shard_txs.len() as u64) as usize;
            let id = id_text(req.id.as_ref());
            let op = req.op.name();
            state
                .recorder
                .record(shard, FlightEvent::new(&id, op, FlightStage::Accept));
            state
                .recorder
                .record(shard, FlightEvent::new(&id, op, FlightStage::Parse));
            state.recorder.record(
                shard,
                FlightEvent::new(&id, op, FlightStage::Build).detail(&format!("{prog_hash:016x}")),
            );
            let job = Job {
                seq,
                req,
                program,
                key,
                arrived,
                reply: reply_tx.clone(),
            };
            // A send can only fail after shutdown closed the shard; the
            // writer then simply never sees this seq, and the connection
            // is going away anyway.
            let _ = shard_txs[shard].send(job);
        }
    }
}

/// Writes `(seq, line)` replies to the socket in strict `seq` order,
/// buffering out-of-order arrivals — the piece that makes per-connection
/// responses independent of shard scheduling.
fn ordered_writer(mut stream: TcpStream, rx: &mpsc::Receiver<(u64, String)>) {
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next_seq: u64 = 0;
    while let Ok((seq, line)) = rx.recv() {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next_seq) {
            if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                return;
            }
            next_seq += 1;
        }
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(addr: SocketAddr, lines: &[String]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for l in lines {
            stream.write_all(l.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        reader
            .lines()
            .take(lines.len())
            .map(|l| l.expect("response line"))
            .collect()
    }

    #[test]
    fn responses_preserve_request_order_and_echo_ids() {
        let handle = spawn(ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        })
        .unwrap();
        let lines: Vec<String> = vec![
            r#"{"op":"run","workload":"fir","id":"a"}"#.to_string(),
            r#"{"op":"run","workload":"fft","id":"b"}"#.to_string(),
            r#"{"op":"stats","id":"c"}"#.to_string(),
            r#"{"op":"shutdown","id":"d"}"#.to_string(),
        ];
        let responses = client(handle.addr, &lines);
        assert_eq!(responses.len(), 4);
        for (resp, id) in responses.iter().zip(["a", "b", "c", "d"]) {
            let doc = Json::parse(resp).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_str), Some(id), "{resp}");
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{resp}");
        }
        let summary = handle.join().unwrap();
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn repeat_requests_hit_the_translation_cache() {
        let handle = spawn(ServeOptions::default()).unwrap();
        let lines: Vec<String> = (0..5)
            .map(|i| format!(r#"{{"op":"translate","workload":"fir","width":8,"id":{i}}}"#))
            .collect();
        let responses = client(handle.addr, &lines);
        // All five translate responses are byte-identical apart from ids.
        let strip = |s: &str| {
            Json::parse(s).map(|mut d| {
                d.remove("id");
                d.write()
            })
        };
        let first = strip(&responses[0]).unwrap();
        for r in &responses[1..5] {
            assert_eq!(strip(r).unwrap(), first);
        }
        // Stats reflect the counters at arrival time, so ask only after
        // every translate response has been read back.
        let stats_resp = client(handle.addr, &[r#"{"op":"stats","id":"s"}"#.to_string()]);
        let stats = Json::parse(&stats_resp[0]).unwrap();
        let cache = stats.get("cache").unwrap();
        assert!(cache.get("hits").and_then(Json::as_u64).unwrap() >= 4);
        assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("evictions").and_then(Json::as_u64), Some(0));
        assert_eq!(cache.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stats.get("backend").and_then(Json::as_str),
            Some("interp"),
            "stats echoes the backend tag"
        );
        let per_shard = stats.get("per_shard").and_then(Json::as_arr).unwrap();
        assert_eq!(per_shard.len(), 4, "one entry per shard");
        let answered: u64 = per_shard
            .iter()
            .filter_map(|s| s.get("requests").and_then(Json::as_u64))
            .sum();
        assert_eq!(answered, 5, "all translates answered by shards");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn bad_requests_and_budgets_answer_gracefully() {
        let handle = spawn(ServeOptions::default()).unwrap();
        let lines: Vec<String> = vec![
            "this is not json".to_string(),
            r#"{"op":"run","workload":"no-such-workload","id":1}"#.to_string(),
            r#"{"op":"run","workload":"fir","budget_cycles":10,"id":2}"#.to_string(),
            r#"{"op":"run","workload":"fir","id":3}"#.to_string(),
        ];
        let responses = client(handle.addr, &lines);
        let kinds: Vec<Option<String>> = responses
            .iter()
            .map(|r| {
                Json::parse(r)
                    .unwrap()
                    .get("kind")
                    .and_then(Json::as_str)
                    .map(str::to_string)
            })
            .collect();
        assert_eq!(kinds[0].as_deref(), Some("bad-request"));
        assert_eq!(kinds[1].as_deref(), Some("bad-request"));
        assert_eq!(kinds[2].as_deref(), Some("budget-exceeded"));
        assert_eq!(
            kinds[3], None,
            "healthy request still served: {}",
            responses[3]
        );
        handle.shutdown();
        let summary = handle.join().unwrap();
        assert_eq!(summary.errors, 3);
    }

    #[test]
    fn inject_is_rejected_without_the_flag() {
        let handle = spawn(ServeOptions::default()).unwrap();
        let responses = client(
            handle.addr,
            &[r#"{"op":"run","workload":"fir","inject":"panic","id":"x"}"#.to_string()],
        );
        let doc = Json::parse(&responses[0]).unwrap();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("bad-request"));
        let err = doc.get("error").and_then(Json::as_str).unwrap();
        assert!(err.contains("--inject-faults"), "{err}");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn injected_panic_is_contained_and_dumped() {
        let dir =
            std::env::temp_dir().join(format!("liquid-simd-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = spawn(ServeOptions {
            shards: 2,
            inject_faults: true,
            flight_dir: Some(dir.clone()),
            ..ServeOptions::default()
        })
        .unwrap();
        let lines: Vec<String> = vec![
            r#"{"op":"run","workload":"fir","id":"healthy-1"}"#.to_string(),
            r#"{"op":"run","workload":"fir","inject":"panic","id":"boom"}"#.to_string(),
            r#"{"op":"run","workload":"fir","id":"healthy-2"}"#.to_string(),
        ];
        let responses = client(handle.addr, &lines);
        let kind_of = |r: &str| {
            Json::parse(r)
                .unwrap()
                .get("kind")
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(kind_of(&responses[0]), None);
        assert_eq!(kind_of(&responses[1]).as_deref(), Some("panic"));
        assert_eq!(kind_of(&responses[2]), None, "shard survives the panic");
        handle.shutdown();
        let summary = handle.join().unwrap();
        assert_eq!(summary.dumps, 1, "one worker-panic dump");
        let dump = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
            .expect("dump file written");
        let text = std::fs::read_to_string(dump.path()).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"schema\":\"flight-v1\""));
        assert!(header.contains("\"reason\":\"worker-panic\""));
        // The failing request's lifecycle is in the dump, through panic.
        for stage in ["accept", "parse", "build", "probe", "translate", "panic"] {
            assert!(
                text.lines().any(|l| l.contains("\"id\":\"boom\"")
                    && l.contains(&format!("\"stage\":\"{stage}\""))),
                "dump missing boom/{stage}:\n{text}"
            );
        }
        assert!(
            dump.path().with_extension("folded").exists(),
            "folded sidecar written"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_burst_triggers_a_dump() {
        let dir =
            std::env::temp_dir().join(format!("liquid-simd-burst-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = spawn(ServeOptions {
            burst_threshold: 3,
            flight_dir: Some(dir.clone()),
            ..ServeOptions::default()
        })
        .unwrap();
        let lines: Vec<String> = (0..4)
            .map(|i| format!(r#"{{"op":"run","workload":"fir","budget_cycles":10,"id":{i}}}"#))
            .collect();
        let responses = client(handle.addr, &lines);
        assert!(responses
            .iter()
            .all(|r| r.contains("\"kind\":\"budget-exceeded\"")));
        handle.shutdown();
        let summary = handle.join().unwrap();
        assert_eq!(summary.dumps, 1, "exactly one dump at the threshold");
        let burst = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().contains("budget-burst"));
        assert!(burst, "dump file names its reason");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_returns_a_metrics_snapshot_and_dump_op_works() {
        let dir =
            std::env::temp_dir().join(format!("liquid-simd-inspect-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = spawn(ServeOptions {
            flight_dir: Some(dir.clone()),
            ..ServeOptions::default()
        })
        .unwrap();
        let warm: Vec<String> = vec![
            r#"{"op":"run","workload":"fir","id":"a"}"#.to_string(),
            r#"{"op":"run","workload":"fir","id":"b"}"#.to_string(),
        ];
        let _ = client(handle.addr, &warm);
        let responses = client(
            handle.addr,
            &[
                r#"{"op":"inspect","id":"i"}"#.to_string(),
                r#"{"op":"dump","reason":"sentinel-drift","id":"d"}"#.to_string(),
            ],
        );
        let doc = Json::parse(&responses[0]).unwrap();
        let metrics = doc.get("metrics").expect("metrics field");
        assert_eq!(
            metrics.get("schema").and_then(Json::as_str),
            Some("metrics-v1")
        );
        assert_eq!(
            metrics
                .get("requests")
                .and_then(|r| r.get("total"))
                .and_then(Json::as_u64),
            Some(2),
            "snapshot sees the warm load, not itself"
        );
        let hist = metrics
            .get("histograms")
            .and_then(|h| h.get("request.cycles"))
            .expect("cycle histogram");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert!(
            metrics
                .get("counters")
                .and_then(|c| c.get("sim.cycles"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0,
            "merged sim counters present"
        );
        let dump = Json::parse(&responses[1]).unwrap();
        assert_eq!(dump.get("ok"), Some(&Json::Bool(true)), "{}", responses[1]);
        let path = dump.get("path").and_then(Json::as_str).unwrap();
        assert!(path.contains("sentinel-drift"));
        assert!(std::path::Path::new(path).exists());
        handle.shutdown();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
