//! The `serve-v1` wire protocol: line-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request, answered **in
//! request order** per connection. A request names an operation and a
//! program (a benchmark workload by name, or inline assembly text):
//!
//! ```json
//! {"op":"run","id":7,"workload":"fir","width":8,"report":true}
//! {"op":"translate","id":"a","workload":"fft","width":2}
//! {"op":"explain","workload":"lu","widths":[2,8],"json":true}
//! {"op":"run","program":"halt\n","name":"tiny","budget_cycles":1000}
//! {"op":"conform","seed":3,"cases":2}
//! {"op":"stats"}
//! {"op":"inspect"}
//! {"op":"dump","reason":"sentinel-drift"}
//! {"op":"shutdown"}
//! ```
//!
//! A successful response is `{"schema":"serve-v1","op":…,"ok":true,
//! "output":…,…}` where `output` is byte-identical to the one-shot CLI's
//! stdout for the same operation. A rejected request — bad fields, a
//! simulation fault, an exceeded cycle/abort budget, or a contained worker
//! panic — is `{"schema":"serve-err-v1","op":…,"ok":false,"kind":…,
//! "error":…}`. Either way the request's `id` (any JSON scalar) is echoed
//! back verbatim as the response's last field; responses never mention the
//! shard that computed them or whether the cache was hit, because their
//! bytes must not depend on either.

use liquid_simd_perfhist::Json;

/// Schema tag of a successful response.
pub const OK_SCHEMA: &str = "serve-v1";
/// Schema tag of an error response.
pub const ERR_SCHEMA: &str = "serve-err-v1";

/// The operation a request names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Run once, print each translated microcode block (CLI `translate`).
    Translate,
    /// Simulate to halt (CLI `run`).
    Run,
    /// Per-region translation verdicts at several widths (CLI `explain`).
    Explain,
    /// Generative differential conformance (CLI `conform`).
    Conform,
    /// Service counters — excluded from determinism hashing.
    Stats,
    /// Full `metrics-v1` telemetry snapshot (counters, histograms, cache
    /// and flight-recorder state) — excluded from determinism hashing.
    Inspect,
    /// Drain the flight recorder into a `flight-v1` dump file on the
    /// daemon host (reason `manual` unless the request names one).
    Dump,
    /// Begin graceful shutdown (in-flight requests still complete).
    Shutdown,
}

impl Op {
    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::Translate => "translate",
            Op::Run => "run",
            Op::Explain => "explain",
            Op::Conform => "conform",
            Op::Stats => "stats",
            Op::Inspect => "inspect",
            Op::Dump => "dump",
            Op::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "translate" => Op::Translate,
            "run" => Op::Run,
            "explain" => Op::Explain,
            "conform" => Op::Conform,
            "stats" => Op::Stats,
            "inspect" => Op::Inspect,
            "dump" => Op::Dump,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }
}

/// Machine flavour for `run` requests, mirroring the CLI's
/// `--lanes 0` / `--native` / default-liquid triage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Dynamic translation enabled (the default).
    Liquid,
    /// Native SIMD, no translator.
    Native,
    /// No accelerator at all.
    Scalar,
}

impl Mode {
    /// The wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::Liquid => "liquid",
            Mode::Native => "native",
            Mode::Scalar => "scalar",
        }
    }
}

/// One parsed, validated request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Echoed back verbatim in the response (string or number).
    pub id: Option<Json>,
    /// The operation.
    pub op: Op,
    /// Benchmark workload name (mutually exclusive with `program`).
    pub workload: Option<String>,
    /// Inline assembly text (mutually exclusive with `workload`).
    pub program: Option<String>,
    /// Display name for inline programs (default `<inline>`).
    pub name: Option<String>,
    /// Accelerator width in lanes (`width` on the wire; 0 = scalar).
    pub lanes: usize,
    /// Machine flavour for `run`.
    pub mode: Mode,
    /// Software-JIT translation (CLI `--jit`).
    pub jit: bool,
    /// Full statistics report instead of the one-line summary (`run`).
    pub report: bool,
    /// Width sweep for `explain`.
    pub widths: Vec<usize>,
    /// JSON output for `explain` (default true — the machine-diffable
    /// form).
    pub json: bool,
    /// Reject the request if the simulation exceeds this many cycles.
    pub budget_cycles: Option<u64>,
    /// Reject the request if the translator aborts more than this many
    /// times.
    pub budget_aborts: Option<u64>,
    /// Conformance seed.
    pub seed: u64,
    /// Conformance case count.
    pub cases: u64,
    /// Test-only fault injection (`"inject":"panic"`): panic inside the
    /// shard worker. Parsed always, honored only when the daemon runs
    /// with `--inject-faults` — the front-end rejects it otherwise.
    pub inject_panic: bool,
    /// Dump reason for `op:"dump"` (default `manual`).
    pub reason: Option<String>,
}

fn get_usize(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("`{key}` must be an unsigned integer")),
    }
}

fn get_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

fn get_str(obj: &Json, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn valid_width(w: usize) -> bool {
    (2..=16).contains(&w) && w.is_power_of_two()
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Returns a message describing the first malformed field; the caller
/// wraps it in a `serve-err-v1` response of kind `bad-request`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if doc.as_obj().is_none() {
        return Err("request must be a JSON object".to_string());
    }
    let op_name = get_str(&doc, "op")?.ok_or("missing `op`")?;
    let op = Op::parse(&op_name).ok_or_else(|| {
        format!(
            "unknown op `{op_name}` (expected \
             translate|run|explain|conform|stats|inspect|dump|shutdown)"
        )
    })?;
    let id = match doc.get("id") {
        None => None,
        Some(v @ (Json::Str(_) | Json::Num(_))) => Some(v.clone()),
        Some(_) => return Err("`id` must be a string or number".to_string()),
    };
    let workload = get_str(&doc, "workload")?;
    let program = get_str(&doc, "program")?;
    if workload.is_some() && program.is_some() {
        return Err("give `workload` or `program`, not both".to_string());
    }
    let needs_program = matches!(op, Op::Translate | Op::Run | Op::Explain);
    if needs_program && workload.is_none() && program.is_none() {
        return Err(format!("op `{op_name}` needs a `workload` or `program`"));
    }
    let mut lanes = get_usize(&doc, "width")?.unwrap_or(8);
    let mut mode = match get_str(&doc, "mode")?.as_deref() {
        None | Some("liquid") => Mode::Liquid,
        Some("native") => Mode::Native,
        Some("scalar") => Mode::Scalar,
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };
    // Normalize exactly as the CLI does: width 0 means scalar-only, and a
    // scalar machine has no lanes — one canonical form per configuration.
    if lanes == 0 {
        mode = Mode::Scalar;
    }
    if mode == Mode::Scalar {
        lanes = 0;
    } else if !valid_width(lanes) {
        return Err("`width` must be 0 (scalar) or a power of two in 2..=16".to_string());
    }
    if op == Op::Translate && lanes < 2 {
        return Err("translate needs `width` >= 2".to_string());
    }
    let widths = match doc.get("widths") {
        None => liquid_simd::experiments::paper_widths(),
        Some(v) => {
            let items = v.as_arr().ok_or("`widths` must be an array")?;
            let mut out = Vec::new();
            for item in items {
                let w = item
                    .as_u64()
                    .map(|n| n as usize)
                    .filter(|&w| valid_width(w))
                    .ok_or("`widths` entries must be powers of two in 2..=16")?;
                out.push(w);
            }
            if out.is_empty() {
                return Err("`widths` needs at least one width".to_string());
            }
            out
        }
    };
    let budget = |key: &str| -> Result<Option<u64>, String> {
        match doc.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("`{key}` must be an unsigned integer")),
        }
    };
    Ok(Request {
        id,
        op,
        workload,
        program,
        name: get_str(&doc, "name")?,
        lanes,
        mode,
        jit: get_bool(&doc, "jit", false)?,
        report: get_bool(&doc, "report", false)?,
        widths,
        json: get_bool(&doc, "json", true)?,
        budget_cycles: budget("budget_cycles")?,
        budget_aborts: budget("budget_aborts")?,
        seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0xC0FFEE),
        cases: doc.get("cases").and_then(Json::as_u64).unwrap_or(20),
        inject_panic: match get_str(&doc, "inject")?.as_deref() {
            None => false,
            Some("panic") => true,
            Some(other) => return Err(format!("unknown `inject` fault `{other}`")),
        },
        reason: get_str(&doc, "reason")?,
    })
}

/// Builds a successful response body **without** the request id: the
/// cacheable part. `fields` follow `schema`/`op`/`ok` in order.
#[must_use]
pub fn ok_body(op: Op, fields: Vec<(String, Json)>) -> String {
    let mut pairs = vec![
        ("schema".to_string(), Json::Str(OK_SCHEMA.to_string())),
        ("op".to_string(), Json::Str(op.name().to_string())),
        ("ok".to_string(), Json::Bool(true)),
    ];
    pairs.extend(fields);
    Json::Obj(pairs).write()
}

/// Builds a `serve-err-v1` response body without the request id.
#[must_use]
pub fn err_body(op: Option<Op>, kind: &str, error: &str) -> String {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(ERR_SCHEMA.to_string())),
        (
            "op".to_string(),
            op.map_or(Json::Null, |o| Json::Str(o.name().to_string())),
        ),
        ("ok".to_string(), Json::Bool(false)),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("error".to_string(), Json::Str(error.to_string())),
    ])
    .write()
}

/// Splices the echoed request id into a response body as its final field.
/// The body is a cached artifact shared by every request with the same
/// canonical key; only the id differs per request, so it is attached at
/// the last moment without re-serializing the document.
#[must_use]
pub fn with_id(body: &str, id: Option<&Json>) -> String {
    match id {
        None => body.to_string(),
        Some(id) => {
            debug_assert!(body.ends_with('}'));
            format!("{},\"id\":{}}}", &body[..body.len() - 1], id.write())
        }
    }
}

/// The canonical cache/determinism key of a request: every field that can
/// change the response body, in one deterministic string. Two requests
/// with equal keys get byte-identical responses (sans id), which is both
/// the cache-correctness argument and what the cross-run determinism
/// hashes are built from.
#[must_use]
pub fn canonical_key(req: &Request, prog_hash: u64, cfg_hash: u64) -> String {
    let name = req
        .workload
        .as_deref()
        .or(req.name.as_deref())
        .unwrap_or("<inline>")
        .to_ascii_lowercase();
    // An injected-fault request must never share a cache line with its
    // healthy twin — the contained panic response is itself cacheable.
    let inject = if req.inject_panic {
        "|inject=panic"
    } else {
        ""
    };
    let key = match req.op {
        Op::Translate => {
            format!(
                "op=translate|prog={prog_hash:016x}|name={name}|width={}",
                req.lanes
            )
        }
        Op::Run => format!(
            "op=run|prog={prog_hash:016x}|name={name}|cfg={cfg_hash:016x}|report={}|bc={}|ba={}",
            req.report,
            req.budget_cycles.map_or(-1i128, i128::from),
            req.budget_aborts.map_or(-1i128, i128::from),
        ),
        Op::Explain => format!(
            "op=explain|prog={prog_hash:016x}|name={name}|widths={}|json={}",
            req.widths
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
            req.json
        ),
        Op::Conform => format!("op=conform|seed={}|cases={}", req.seed, req.cases),
        Op::Stats | Op::Inspect | Op::Dump | Op::Shutdown => format!("op={}", req.op.name()),
    };
    format!("{key}{inject}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_run_request() {
        let r = parse_request(r#"{"op":"run","workload":"fir","id":7}"#).unwrap();
        assert_eq!(r.op, Op::Run);
        assert_eq!(r.workload.as_deref(), Some("fir"));
        assert_eq!(r.lanes, 8);
        assert_eq!(r.mode, Mode::Liquid);
        assert_eq!(r.id, Some(Json::Num("7".to_string())));
        assert!(!r.report);
    }

    #[test]
    fn width_zero_and_scalar_mode_normalize_identically() {
        let a = parse_request(r#"{"op":"run","workload":"fir","width":0}"#).unwrap();
        let b = parse_request(r#"{"op":"run","workload":"fir","mode":"scalar"}"#).unwrap();
        assert_eq!((a.mode, a.lanes), (Mode::Scalar, 0));
        assert_eq!((b.mode, b.lanes), (Mode::Scalar, 0));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("{", "malformed JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"op":"flip"}"#, "unknown op"),
            (r#"{"op":"run"}"#, "needs a `workload` or `program`"),
            (r#"{"op":"run","workload":"a","program":"b"}"#, "not both"),
            (r#"{"op":"run","workload":"a","width":3}"#, "power of two"),
            (
                r#"{"op":"translate","workload":"a","width":0}"#,
                "width` >= 2",
            ),
            (r#"{"op":"run","workload":"a","id":[1]}"#, "`id` must be"),
            (
                r#"{"op":"explain","workload":"a","widths":[]}"#,
                "at least one width",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn id_splice_is_exact_and_bodies_round_trip() {
        let body = ok_body(
            Op::Run,
            vec![("output".to_string(), Json::Str("x\n".to_string()))],
        );
        assert_eq!(
            body,
            r#"{"schema":"serve-v1","op":"run","ok":true,"output":"x\n"}"#
        );
        let with_num = with_id(&body, Some(&Json::Num("7".to_string())));
        assert_eq!(
            with_num,
            r#"{"schema":"serve-v1","op":"run","ok":true,"output":"x\n","id":7}"#
        );
        Json::parse(&with_num).unwrap();
        let with_str = with_id(&body, Some(&Json::Str("c1-r2".to_string())));
        assert!(with_str.ends_with(r#""id":"c1-r2"}"#));
        Json::parse(&with_str).unwrap();
        assert_eq!(with_id(&body, None), body);
        let err = err_body(Some(Op::Run), "budget-exceeded", "cycle budget 10 exceeded");
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(ERR_SCHEMA));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn canonical_keys_separate_what_must_differ() {
        let base = parse_request(r#"{"op":"run","workload":"fir"}"#).unwrap();
        let report = parse_request(r#"{"op":"run","workload":"fir","report":true}"#).unwrap();
        let budget = parse_request(r#"{"op":"run","workload":"fir","budget_cycles":9}"#).unwrap();
        let k = |r: &Request| canonical_key(r, 1, 2);
        assert_ne!(k(&base), k(&report));
        assert_ne!(k(&base), k(&budget));
        assert_eq!(k(&base), k(&base.clone()));
        // Different program or config hashes always split the key.
        assert_ne!(canonical_key(&base, 1, 2), canonical_key(&base, 3, 2));
        assert_ne!(canonical_key(&base, 1, 2), canonical_key(&base, 1, 4));
    }
}
