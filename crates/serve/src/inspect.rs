//! The `metrics-v1` snapshot format behind the `inspect` op, plus the
//! scrubber that strips its wall-clock and schedule-dependent fields.
//!
//! A snapshot is a single ordered JSON document:
//!
//! ```json
//! {"schema":"metrics-v1","backend":"interp","shards":4,"uptime_us":…,
//!  "requests":{"total":…,"errors":…,"by_op":{…}},
//!  "determinism":{"requests_hash":…,"responses_hash":…,"sim_cycles_total":…},
//!  "cache":{"builds":…,"translations":{"entries":…,"capacity":…,
//!           "generation":…,"evictions":…,"hits":…,"misses":…,"hit_rate":…}},
//!  "flight":{"capacity":…,"events":…,"dropped":…,"contended":…},
//!  "counters":{…},"histograms":{"request.cycles":{…},"wall.latency_us":{…}}}
//! ```
//!
//! Determinism contract: after [`scrub`], a snapshot taken after a fixed
//! request load is **byte-identical at any shard count**. The fields the
//! scrubber removes are exactly the ones that legitimately depend on
//! wall-clock time or scheduling: shard count and uptime, `wall.*`
//! histograms, cache hit/miss tallies (two workers racing one miss both
//! count it), and the flight-recorder's event/drop/contention counters
//! (a racing miss records extra lifecycle events). Everything else —
//! request totals, determinism hashes, cache occupancy and generation,
//! merged per-shard counters, and the power-of-two cycle histogram — is a
//! pure function of the request multiset.

use liquid_simd_perfhist::Json;
use liquid_simd_trace::{Histogram, Metrics};

/// Schema tag of an `inspect` snapshot.
pub const METRICS_SCHEMA: &str = "metrics-v1";

/// Histogram names with this prefix hold wall-clock samples and are
/// scrubbed before determinism comparisons.
pub const WALL_PREFIX: &str = "wall.";

/// Bucket edges for simulated-cycle histograms (`2^0 … 2^40`).
#[must_use]
pub fn cycle_bounds() -> Vec<u64> {
    liquid_simd_trace::pow2_bounds(40)
}

/// Bucket edges for wall-latency histograms in microseconds (`2^0 … 2^26`,
/// ≈ 67 s).
#[must_use]
pub fn latency_bounds() -> Vec<u64> {
    liquid_simd_trace::pow2_bounds(26)
}

/// Renders one histogram as ordered JSON: bounds, per-bucket counts (one
/// longer than bounds — the overflow bucket), and the exact aggregates.
#[must_use]
pub fn histogram_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        (
            "bounds".to_string(),
            Json::Arr(h.bounds().iter().map(|&b| Json::u64(b)).collect()),
        ),
        (
            "counts".to_string(),
            Json::Arr(h.bucket_counts().iter().map(|&c| Json::u64(c)).collect()),
        ),
        ("count".to_string(), Json::u64(h.count())),
        ("sum".to_string(), Json::u64(h.sum())),
        ("max".to_string(), Json::u64(h.max())),
    ])
}

/// Renders a merged registry as the `counters`/`histograms` pair of a
/// snapshot. `BTreeMap` iteration makes both orderings canonical.
#[must_use]
pub fn registry_json(m: &Metrics) -> (Json, Json) {
    let counters = Json::Obj(
        m.counters()
            .iter()
            .map(|(k, &v)| (k.clone(), Json::u64(v)))
            .collect(),
    );
    let histograms = Json::Obj(
        m.histograms()
            .iter()
            .map(|(k, h)| (k.clone(), histogram_json(h)))
            .collect(),
    );
    (counters, histograms)
}

/// Approximate percentile from a `histogram_json` document — the client
/// side of [`histogram_json`], used by `liquid-simd top` to compute
/// p50/p95/p99 without reconstructing a [`Histogram`]. Mirrors
/// [`Histogram::percentile`]: the inclusive upper edge of the bucket
/// holding the rank-th sample, or `max` in the overflow bucket.
#[must_use]
pub fn percentile_json(hist: &Json, p: f64) -> u64 {
    let Some(bounds) = hist.get("bounds").and_then(Json::as_arr) else {
        return 0;
    };
    let Some(counts) = hist.get("counts").and_then(Json::as_arr) else {
        return 0;
    };
    let total = hist.get("count").and_then(Json::as_u64).unwrap_or(0);
    let max = hist.get("max").and_then(Json::as_u64).unwrap_or(0);
    if total == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c.as_u64().unwrap_or(0);
        if seen >= rank {
            return bounds.get(i).and_then(Json::as_u64).unwrap_or(max);
        }
    }
    max
}

/// Returns a copy of a `metrics-v1` snapshot with every wall-clock and
/// schedule-dependent field removed (see the module docs for the list) —
/// the form in which snapshots at different shard counts are
/// byte-identical under fixed load.
#[must_use]
pub fn scrub(doc: &Json) -> Json {
    scrub_at(doc, "")
}

fn scrub_at(doc: &Json, path: &str) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| {
                    let full = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    !scrubbed(&full)
                })
                .map(|(k, v)| {
                    let full = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    (k.clone(), scrub_at(v, &full))
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

fn scrubbed(path: &str) -> bool {
    matches!(
        path,
        "shards"
            | "uptime_us"
            | "cache.translations.hits"
            | "cache.translations.misses"
            | "cache.translations.hit_rate"
            | "flight.events"
            | "flight.dropped"
            | "flight.contended"
    ) || path.starts_with(&format!("histograms.{WALL_PREFIX}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_json_round_trips_shape() {
        let mut h = Histogram::pow2(4);
        for s in [1, 3, 9, 40] {
            h.observe(s);
        }
        let doc = histogram_json(&h);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("sum").and_then(Json::as_u64), Some(53));
        assert_eq!(doc.get("max").and_then(Json::as_u64), Some(40));
        assert_eq!(doc.get("bounds").and_then(Json::as_arr).unwrap().len(), 5);
        assert_eq!(doc.get("counts").and_then(Json::as_arr).unwrap().len(), 6);
        // Parsing the rendered text reproduces the document byte-for-byte.
        let text = doc.write();
        assert_eq!(Json::parse(&text).unwrap().write(), text);
    }

    #[test]
    fn percentile_json_matches_histogram_percentile() {
        let mut h = Histogram::pow2(16);
        for s in [1, 2, 5, 9, 100, 1000, 70_000, 70_000, 70_001, 200_000] {
            h.observe(s);
        }
        let doc = histogram_json(&h);
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile_json(&doc, p), h.percentile(p), "p{p}");
        }
        assert_eq!(percentile_json(&Json::Obj(vec![]), 50.0), 0);
    }

    #[test]
    fn scrub_removes_exactly_the_volatile_fields() {
        let doc = Json::parse(
            r#"{"schema":"metrics-v1","backend":"interp","shards":4,"uptime_us":99,
            "requests":{"total":10,"errors":1},
            "cache":{"builds":2,"translations":{"entries":3,"capacity":0,"generation":3,
                     "evictions":0,"hits":7,"misses":3,"hit_rate":0.7}},
            "flight":{"capacity":4096,"events":50,"dropped":0,"contended":1},
            "counters":{"cycles":123},
            "histograms":{"request.cycles":{"count":10},"wall.latency_us":{"count":10}}}"#,
        )
        .unwrap();
        let clean = scrub(&doc);
        let text = clean.write();
        for gone in [
            "shards",
            "uptime_us",
            "hits",
            "misses",
            "hit_rate",
            "\"events\"",
            "dropped",
            "contended",
            "wall.latency_us",
        ] {
            assert!(!text.contains(gone), "{gone} must be scrubbed: {text}");
        }
        for kept in [
            "backend",
            "\"total\":10",
            "\"entries\":3",
            "\"generation\":3",
            "\"evictions\":0",
            "\"capacity\":4096",
            "request.cycles",
            "\"cycles\":123",
        ] {
            assert!(text.contains(kept), "{kept} must survive: {text}");
        }
        // Scrubbing is idempotent.
        assert_eq!(scrub(&clean).write(), text);
    }
}
