//! Exporters: JSON-lines, Chrome trace-event format, and a human-readable
//! summary. All JSON is hand-rolled (the crate has no dependencies); the
//! emitted values are numbers and escaped strings only.

use std::fmt::Write as _;

use crate::event::{TraceEvent, TraceRecord, Track};
use crate::span::{self, SpanRecord};
use crate::tracer::Tracer;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The event-specific payload fields as JSON key/value text, e.g.
/// `"func_pc":12,"reason":"cam-miss"`.
fn payload(event: &TraceEvent) -> String {
    match event {
        TraceEvent::InstrRetired { pc, vector } => {
            format!("\"pc\":{pc},\"vector\":{vector}")
        }
        TraceEvent::CallEnter { target, mode } | TraceEvent::CallExit { target, mode } => {
            format!("\"target\":{target},\"mode\":\"{}\"", mode.as_str())
        }
        TraceEvent::TranslationBegin { func_pc } => format!("\"func_pc\":{func_pc}"),
        TraceEvent::TranslationProgress { func_pc, observed } => {
            format!("\"func_pc\":{func_pc},\"observed\":{observed}")
        }
        TraceEvent::TranslationCommit {
            func_pc,
            uops,
            dynamic_instrs,
        } => format!("\"func_pc\":{func_pc},\"uops\":{uops},\"dynamic_instrs\":{dynamic_instrs}"),
        TraceEvent::TranslationAbort { func_pc, reason } => {
            format!("\"func_pc\":{func_pc},\"reason\":\"{}\"", escape(reason))
        }
        TraceEvent::McacheHit { func_pc }
        | TraceEvent::McacheMiss { func_pc }
        | TraceEvent::McachePending { func_pc }
        | TraceEvent::McacheEvict { func_pc } => format!("\"func_pc\":{func_pc}"),
        TraceEvent::McacheInsert { func_pc, uops } => {
            format!("\"func_pc\":{func_pc},\"uops\":{uops}")
        }
        TraceEvent::McacheInvalidate { entries } => format!("\"entries\":{entries}"),
        TraceEvent::CacheMiss { cache, addr } => {
            format!("\"cache\":\"{}\",\"addr\":{addr}", cache.as_str())
        }
        TraceEvent::InterruptInjected { retired } => format!("\"retired\":{retired}"),
    }
}

/// Renders records as JSON-lines: one object per line with `seq`, `cycle`,
/// `kind`, `track`, and the event's payload fields inline.
#[must_use]
pub fn json_lines(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(
            out,
            "{{\"seq\":{},\"cycle\":{},\"kind\":\"{}\",\"track\":\"{}\",{}}}",
            r.seq,
            r.cycle,
            r.event.kind(),
            r.event.track().as_str(),
            payload(&r.event)
        );
    }
    out
}

/// A short human label for an event, used as the Chrome-trace `name`.
fn chrome_name(event: &TraceEvent) -> String {
    match event {
        TraceEvent::CallEnter { target, mode } | TraceEvent::CallExit { target, mode } => {
            format!("call@{target} ({})", mode.as_str())
        }
        TraceEvent::TranslationBegin { func_pc }
        | TraceEvent::TranslationProgress { func_pc, .. }
        | TraceEvent::TranslationCommit { func_pc, .. }
        | TraceEvent::TranslationAbort { func_pc, .. } => format!("translate@{func_pc}"),
        other => other.kind().to_string(),
    }
}

/// Renders records in Chrome trace-event format (`chrome://tracing`,
/// Perfetto). Cycles map to microseconds one-to-one. Durations are emitted
/// as `B`/`E` pairs: call enter→exit on the pipeline track and translation
/// begin→commit/abort on the translator track; everything else is an
/// instant. Each subsystem gets its own named thread track.
#[must_use]
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    chrome_trace_with_spans(records, &[])
}

/// [`chrome_trace`] plus span `B`/`E` events. Spans render on their
/// track's thread, stacked by nesting depth; the begin/end order counters
/// recorded by the tracer guarantee a valid chronological interleaving
/// even when several spans share a cycle stamp. Still-open spans emit
/// their `B` only (the viewer extends them to the end of the trace).
#[must_use]
pub fn chrome_trace_with_spans(records: &[TraceRecord], spans: &[SpanRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 2 * spans.len() + 8);
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"liquid-simd\"}}"
            .to_string(),
    );
    for track in Track::ALL {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.tid(),
            track.as_str()
        ));
    }
    for r in records {
        let ph = match &r.event {
            TraceEvent::CallEnter { .. } | TraceEvent::TranslationBegin { .. } => "B",
            TraceEvent::CallExit { .. }
            | TraceEvent::TranslationCommit { .. }
            | TraceEvent::TranslationAbort { .. } => "E",
            _ => "i",
        };
        let scope = if ph == "i" { ",\"s\":\"t\"" } else { "" };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\"{scope},\"ts\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
            escape(&chrome_name(&r.event)),
            r.event.kind(),
            r.cycle,
            r.event.track().tid(),
            payload(&r.event)
        ));
    }
    // Span B/E events, in the tracer's global begin/end order so pairs on
    // one thread nest correctly.
    let mut span_events: Vec<(u64, String)> = Vec::with_capacity(2 * spans.len());
    for s in spans {
        span_events.push((
            s.begin_order,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
                escape(&s.name),
                s.begin_cycle,
                s.track.tid(),
                s.depth
            ),
        ));
        if let (Some(order), Some(cycle)) = (s.end_order, s.end_cycle) {
            span_events.push((
                order,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{cycle},\
                     \"pid\":1,\"tid\":{}}}",
                    escape(&s.name),
                    s.track.tid()
                ),
            ));
        }
    }
    span_events.sort_by_key(|(order, _)| *order);
    events.extend(span_events.into_iter().map(|(_, line)| line));
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Renders closed spans as folded stacks — the flamegraph input format:
/// one line per distinct call path, `track;outer;inner <self-cycles>`,
/// sorted by path. Self time is the span's cycles minus the cycles of its
/// *direct* children (clamped at zero); zero-self-time paths are kept so
/// every frame that appears in a deeper path also exists as a line.
/// Still-open spans are skipped — they have no cycle delta.
#[must_use]
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    // Reconstruct ancestry per track from the global begin/end ordering:
    // a span is a child of the most recent same-track span that began
    // before it and ended after it.
    let mut ordered: Vec<&SpanRecord> = spans.iter().filter(|s| s.closed()).collect();
    ordered.sort_by_key(|s| s.begin_order);
    let mut totals: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new(); // path -> (cycles, direct children cycles)
    let mut stacks: std::collections::BTreeMap<&str, Vec<&SpanRecord>> =
        std::collections::BTreeMap::new();
    for s in ordered {
        let stack = stacks.entry(s.track.as_str()).or_default();
        while let Some(top) = stack.last() {
            if top.end_order.unwrap_or(u64::MAX) < s.begin_order {
                stack.pop();
            } else {
                break;
            }
        }
        let mut path = String::from(s.track.as_str());
        for anc in stack.iter() {
            path.push(';');
            path.push_str(&anc.name);
        }
        if let Some(parent) = stack.last() {
            let mut parent_path = String::from(s.track.as_str());
            for anc in &stack[..stack.len() - 1] {
                parent_path.push(';');
                parent_path.push_str(&anc.name);
            }
            parent_path.push(';');
            parent_path.push_str(&parent.name);
            totals.entry(parent_path).or_default().1 += s.cycles();
        }
        path.push(';');
        path.push_str(&s.name);
        totals.entry(path).or_default().0 += s.cycles();
        stack.push(s);
    }
    let mut out = String::new();
    for (path, (cycles, children)) in &totals {
        let _ = writeln!(out, "{path} {}", cycles.saturating_sub(*children));
    }
    out
}

/// Renders a human-readable summary of everything the tracer recorded:
/// buffered/dropped record counts, per-kind event tallies, counters, and
/// histograms.
#[must_use]
pub fn summary(tracer: &Tracer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events emitted, {} buffered, {} dropped (last cycle {})",
        tracer.emitted(),
        tracer.len(),
        tracer.dropped(),
        tracer.now()
    );
    let kinds = tracer.kind_counts();
    if !kinds.is_empty() {
        let _ = writeln!(out, "events:");
        for (kind, n) in &kinds {
            let _ = writeln!(out, "  {kind:<22} {n}");
        }
    }
    let metrics = tracer.metrics();
    if !metrics.counters().is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, n) in metrics.counters() {
            let _ = writeln!(out, "  {name:<30} {n}");
        }
    }
    if !metrics.histograms().is_empty() {
        let _ = writeln!(out, "histograms:");
        for (name, h) in metrics.histograms() {
            let _ = writeln!(out, "  {name:<30} {h}");
        }
    }
    let spans = tracer.spans();
    if !spans.is_empty() {
        out.push_str(&span_summary(&spans));
    }
    out
}

/// Renders the span-aggregation table: one row per span name with call
/// count, total/mean/max simulated cycles, and total wall time, sorted by
/// total cycles descending.
#[must_use]
pub fn span_summary(spans: &[SpanRecord]) -> String {
    let aggs = span::aggregate(spans);
    if aggs.is_empty() {
        return String::new();
    }
    let mut out = String::from("spans:\n");
    let _ = writeln!(
        out,
        "  {:<24} {:>7} {:>12} {:>10} {:>10} {:>10}",
        "name", "count", "cycles", "mean", "max", "wall-ms"
    );
    for a in aggs {
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>12} {:>10} {:>10} {:>10.3}{}",
            a.name,
            a.count,
            a.total_cycles,
            a.mean_cycles(),
            a.max_cycles,
            a.total_wall_ns as f64 / 1e6,
            if a.open > 0 {
                format!("  ({} open)", a.open)
            } else {
                String::new()
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallMode, TraceEvent};
    use crate::tracer::Tracer;

    fn sample_records() -> Vec<TraceRecord> {
        let t = Tracer::new();
        t.set_now(10);
        t.emit(TraceEvent::CallEnter {
            target: 8,
            mode: CallMode::Scalar,
        });
        t.emit(TraceEvent::TranslationBegin { func_pc: 8 });
        t.set_now(40);
        t.emit(TraceEvent::TranslationCommit {
            func_pc: 8,
            uops: 5,
            dynamic_instrs: 64,
        });
        t.set_now(41);
        t.emit(TraceEvent::CallExit {
            target: 8,
            mode: CallMode::Scalar,
        });
        t.records()
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let text = json_lines(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"kind\":\"call-enter\""));
        assert!(lines[2].contains("\"uops\":5"));
    }

    #[test]
    fn chrome_trace_has_pairs_and_metadata() {
        let text = chrome_trace(&sample_records());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        // Balanced B/E per track in this simple case.
        let b = text.matches("\"ph\":\"B\"").count();
        let e = text.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e);
    }

    #[test]
    fn summary_lists_tallies_and_metrics() {
        let t = Tracer::new();
        t.emit(TraceEvent::McacheHit { func_pc: 4 });
        t.emit(TraceEvent::McacheHit { func_pc: 4 });
        let text = summary(&t);
        assert!(text.contains("mcache-hit"));
        assert!(text.contains("mcache.hit"));
        assert!(text.contains("2 events emitted"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn chrome_trace_spans_nest_in_order() {
        let t = Tracer::new();
        t.set_now(10);
        let outer = t.span_begin(Track::Pipeline, "outer");
        t.set_now(20);
        let inner = t.span_begin(Track::Pipeline, "inner");
        t.set_now(30);
        t.span_end(inner);
        t.set_now(40);
        t.span_end(outer);
        let text = chrome_trace_with_spans(&[], &t.spans());
        // Inner's B after outer's B, inner's E before outer's E.
        let pos = |needle: &str| text.find(needle).unwrap();
        let outer_b = pos("\"name\":\"outer\",\"cat\":\"span\",\"ph\":\"B\"");
        let inner_b = pos("\"name\":\"inner\",\"cat\":\"span\",\"ph\":\"B\"");
        let inner_e = pos("\"name\":\"inner\",\"cat\":\"span\",\"ph\":\"E\"");
        let outer_e = pos("\"name\":\"outer\",\"cat\":\"span\",\"ph\":\"E\"");
        assert!(outer_b < inner_b && inner_b < inner_e && inner_e < outer_e);
        assert_eq!(text.matches("\"cat\":\"span\"").count(), 4);
    }

    #[test]
    fn folded_stacks_computes_self_time() {
        let t = Tracer::new();
        t.set_now(0);
        let outer = t.span_begin(Track::Pipeline, "run");
        t.set_now(10);
        let inner = t.span_begin(Track::Pipeline, "exec:scalar");
        t.set_now(40);
        t.span_end(inner);
        t.set_now(50);
        let inner2 = t.span_begin(Track::Pipeline, "exec:micro");
        t.set_now(90);
        t.span_end(inner2);
        t.set_now(100);
        t.span_end(outer);
        // A sibling on another track must not nest under the pipeline.
        let tr = t.span_begin(Track::Translator, "translate@4");
        t.set_now(120);
        t.span_end(tr);
        let open = t.span_begin(Track::Pipeline, "left-open");
        let text = folded_stacks(&t.spans());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"pipeline;run 30")); // 100 - (30 + 40)
        assert!(lines.contains(&"pipeline;run;exec:scalar 30"));
        assert!(lines.contains(&"pipeline;run;exec:micro 40"));
        assert!(lines.contains(&"translator;translate@4 20"));
        assert!(!text.contains("left-open"), "open spans are skipped");
        t.span_end(open);
    }

    #[test]
    fn span_summary_aggregates_by_name() {
        let t = Tracer::new();
        for _ in 0..3 {
            let start = t.now();
            let id = t.span_begin(Track::Translator, "translate");
            t.set_now(start + 100);
            t.span_end(id);
        }
        let text = span_summary(&t.spans());
        assert!(text.contains("translate"));
        assert!(text.contains("300"));
        // And the tracer summary embeds the same table.
        assert!(summary(&t).contains("spans:"));
    }
}
