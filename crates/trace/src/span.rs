//! Spans: named durations with nesting, cycle and wall-clock deltas.
//!
//! Events ([`TraceEvent`](crate::TraceEvent)) answer *what happened*;
//! spans answer *where the time went*. A span opens with
//! [`Tracer::span_begin`](crate::Tracer::span_begin) (or the RAII
//! [`Tracer::span`](crate::Tracer::span)) and closes with
//! [`Tracer::span_end`](crate::Tracer::span_end); while open it carries the
//! machine cycle and wall-clock instant at which it began, and on close it
//! records both deltas. Spans nest per [`Track`]: opening a span while
//! another is open on the same track records a deeper level, which the
//! Chrome-trace exporter renders as stacked `B`/`E` events.
//!
//! Spans are kept in an append-only list (they are few — phases, calls,
//! translation attempts — not per-instruction), so a closed span is never
//! lost the way ring-buffer records can be.

use crate::event::Track;
use crate::tracer::Tracer;

/// Opaque handle to an open (or closed) span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The span's index in the tracer's span list.
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).unwrap_or(usize::MAX)
    }
}

/// One recorded span: a named duration on a subsystem track.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id (its index in the tracer's span list).
    pub id: u64,
    /// Span name, e.g. `exec:scalar` or `translate@12`.
    pub name: String,
    /// The subsystem track the span renders on.
    pub track: Track,
    /// Nesting depth within the track at begin time (0 = top level).
    pub depth: u32,
    /// Begin order across *all* span begins and ends — used to emit
    /// Chrome `B`/`E` events in a valid chronological interleaving.
    pub begin_order: u64,
    /// End order, if closed (shares the counter with `begin_order`).
    pub end_order: Option<u64>,
    /// Machine cycle at begin.
    pub begin_cycle: u64,
    /// Machine cycle at end, if closed.
    pub end_cycle: Option<u64>,
    /// Wall-clock nanoseconds since tracer creation at begin.
    pub begin_wall_ns: u64,
    /// Wall-clock nanoseconds since tracer creation at end, if closed.
    pub end_wall_ns: Option<u64>,
}

impl SpanRecord {
    /// Whether the span has been closed.
    #[must_use]
    pub fn closed(&self) -> bool {
        self.end_cycle.is_some()
    }

    /// Simulated cycles covered (0 while still open).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.end_cycle
            .map_or(0, |end| end.saturating_sub(self.begin_cycle))
    }

    /// Wall-clock nanoseconds covered (0 while still open).
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        self.end_wall_ns
            .map_or(0, |end| end.saturating_sub(self.begin_wall_ns))
    }
}

/// RAII guard returned by [`Tracer::span`]: ends the span when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: SpanId,
}

impl SpanGuard {
    pub(crate) fn new(tracer: Tracer, id: SpanId) -> SpanGuard {
        SpanGuard { tracer, id }
    }

    /// The guarded span's id.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.span_end(self.id);
    }
}

/// Aggregated statistics for all spans sharing one name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanAgg {
    /// The shared span name.
    pub name: String,
    /// Closed spans with this name.
    pub count: u64,
    /// Spans with this name still open at snapshot time (not counted in
    /// the totals below).
    pub open: u64,
    /// Total simulated cycles across closed spans.
    pub total_cycles: u64,
    /// Largest single-span cycle delta.
    pub max_cycles: u64,
    /// Total wall-clock nanoseconds across closed spans.
    pub total_wall_ns: u64,
}

impl SpanAgg {
    /// Mean cycles per closed span (0 when none closed).
    #[must_use]
    pub fn mean_cycles(&self) -> u64 {
        self.total_cycles.checked_div(self.count).unwrap_or(0)
    }
}

/// Groups spans by name and aggregates their deltas, sorted by total
/// cycles descending (ties broken by name, so output is deterministic).
#[must_use]
pub fn aggregate(spans: &[SpanRecord]) -> Vec<SpanAgg> {
    let mut by_name: std::collections::BTreeMap<&str, SpanAgg> = std::collections::BTreeMap::new();
    for s in spans {
        let agg = by_name.entry(&s.name).or_insert_with(|| SpanAgg {
            name: s.name.clone(),
            count: 0,
            open: 0,
            total_cycles: 0,
            max_cycles: 0,
            total_wall_ns: 0,
        });
        if s.closed() {
            agg.count += 1;
            agg.total_cycles += s.cycles();
            agg.max_cycles = agg.max_cycles.max(s.cycles());
            agg.total_wall_ns += s.wall_ns();
        } else {
            agg.open += 1;
        }
    }
    let mut out: Vec<SpanAgg> = by_name.into_values().collect();
    out.sort_by(|a, b| {
        b.total_cycles
            .cmp(&a.total_cycles)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;
    use crate::tracer::Tracer;

    #[test]
    fn begin_end_records_cycle_delta() {
        let t = Tracer::new();
        t.set_now(100);
        let id = t.span_begin(Track::Pipeline, "exec:scalar");
        t.set_now(340);
        t.span_end(id);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "exec:scalar");
        assert_eq!(spans[0].cycles(), 240);
        assert!(spans[0].closed());
    }

    #[test]
    fn nesting_depth_tracks_per_track() {
        let t = Tracer::new();
        let outer = t.span_begin(Track::Pipeline, "outer");
        let inner = t.span_begin(Track::Pipeline, "inner");
        // A different track does not nest under the pipeline.
        let other = t.span_begin(Track::Translator, "translate");
        t.span_end(other);
        t.span_end(inner);
        t.span_end(outer);
        let spans = t.spans();
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].depth, 0);
        // begin/end order counters form a valid interleaving.
        assert!(spans[1].begin_order > spans[0].begin_order);
        assert!(spans[1].end_order.unwrap() < spans[0].end_order.unwrap());
    }

    #[test]
    fn span_end_is_idempotent() {
        let t = Tracer::new();
        let id = t.span_begin(Track::Mcache, "fill");
        t.set_now(7);
        t.span_end(id);
        t.set_now(99);
        t.span_end(id); // second end must not move the close point
        assert_eq!(t.spans()[0].end_cycle, Some(7));
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn guard_ends_on_drop() {
        let t = Tracer::new();
        {
            let _g = t.span(Track::Pipeline, "scoped");
            assert_eq!(t.open_spans(), 1);
        }
        assert_eq!(t.open_spans(), 0);
        assert!(t.spans()[0].closed());
    }

    #[test]
    fn aggregate_groups_and_sorts() {
        let t = Tracer::new();
        for (name, len) in [("a", 10), ("b", 50), ("a", 30)] {
            let start = t.now();
            let id = t.span_begin(Track::Pipeline, name);
            t.set_now(start + len);
            t.span_end(id);
        }
        let open = t.span_begin(Track::Pipeline, "a");
        let aggs = aggregate(&t.spans());
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].name, "b"); // 50 > 40
        assert_eq!(aggs[1].name, "a");
        assert_eq!(aggs[1].count, 2);
        assert_eq!(aggs[1].open, 1);
        assert_eq!(aggs[1].total_cycles, 40);
        assert_eq!(aggs[1].mean_cycles(), 20);
        assert_eq!(aggs[1].max_cycles, 30);
        t.span_end(open);
    }
}
