//! The [`Tracer`]: a cheaply cloneable recording handle shared by every
//! pipeline component.
//!
//! The simulator is single-threaded, so the handle is `Rc<RefCell<..>>`;
//! cloning it hands the same underlying recorder to the caches, the
//! translator, and the machine. The clock owner (the machine) stamps the
//! shared `now` each step; emitters never need to know the cycle.
//!
//! A machine constructed *without* a tracer pays exactly one branch per
//! emit site — no event is constructed, no clock is stamped.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

use crate::event::{TraceEvent, TraceRecord, Track};
use crate::metrics::Metrics;
use crate::span::{SpanGuard, SpanId, SpanRecord};

/// Default ring-buffer capacity (records).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Bucket edges for translation latency in cycles (begin → commit).
const LATENCY_BOUNDS: [u64; 7] = [10, 30, 100, 300, 1_000, 3_000, 10_000];
/// Bucket edges for microcode length in instructions.
const UOPS_BOUNDS: [u64; 5] = [4, 8, 16, 32, 64];
/// Bucket edges for cycles between consecutive calls of the same target
/// (the paper's Table 6 buckets, extended).
const CALL_GAP_BOUNDS: [u64; 5] = [150, 300, 1_000, 10_000, 100_000];

/// Recorder configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in records; the oldest records are dropped
    /// (and counted) once full.
    pub capacity: usize,
    /// Record per-instruction retire events in the ring buffer. Off by
    /// default — they are high-volume; tallies are kept either way.
    pub instructions: bool,
    /// Record per-instruction translation-progress events in the ring
    /// buffer. On by default (translation windows are short).
    pub progress: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: DEFAULT_CAPACITY,
            instructions: false,
            progress: true,
        }
    }
}

struct Inner {
    config: TraceConfig,
    now: u64,
    seq: u64,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
    /// Per-kind tallies, independent of ring capacity: these never disagree
    /// with the subsystem aggregate counters even after ring drops.
    kind_counts: BTreeMap<&'static str, u64>,
    metrics: Metrics,
    /// Begin cycle of the in-flight translation per function, for latency.
    translation_begin: BTreeMap<u32, u64>,
    /// Last call-enter cycle per target, for call-gap histograms.
    last_call: BTreeMap<u32, u64>,
    /// Wall-clock reference point for span wall deltas.
    epoch: Instant,
    /// Append-only span list; a [`SpanId`] indexes into it.
    spans: Vec<SpanRecord>,
    /// Shared begin/end ordering counter for spans.
    span_order: u64,
    /// Open-span count per track (indexed `tid - 1`), for nesting depth.
    open_depth: [u32; 4],
}

/// The shared tracing handle. Clone freely — all clones record into the
/// same buffer and registry.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Tracer")
            .field("now", &inner.now)
            .field("recorded", &inner.seq)
            .field("buffered", &inner.ring.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer with the default configuration.
    #[must_use]
    pub fn new() -> Tracer {
        Tracer::with_config(TraceConfig::default())
    }

    /// Creates a tracer with an explicit configuration.
    #[must_use]
    pub fn with_config(config: TraceConfig) -> Tracer {
        Tracer {
            inner: Rc::new(RefCell::new(Inner {
                config,
                now: 0,
                seq: 0,
                ring: VecDeque::with_capacity(config.capacity.min(4096)),
                dropped: 0,
                kind_counts: BTreeMap::new(),
                metrics: Metrics::new(),
                translation_begin: BTreeMap::new(),
                last_call: BTreeMap::new(),
                epoch: Instant::now(),
                spans: Vec::new(),
                span_order: 0,
                open_depth: [0; 4],
            })),
        }
    }

    /// Stamps the shared clock; subsequent emissions carry this cycle.
    /// Called by whoever owns machine time (the simulator's step loop).
    pub fn set_now(&self, cycle: u64) {
        self.inner.borrow_mut().now = cycle;
    }

    /// The current clock stamp.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.inner.borrow().now
    }

    /// Records one event at the current clock, updating tallies and
    /// derived metrics.
    pub fn emit(&self, event: TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        let kind = event.kind();
        *inner.kind_counts.entry(kind).or_insert(0) += 1;

        // Derived metrics.
        match &event {
            TraceEvent::CallEnter { target, mode } => {
                inner.metrics.add("calls.total", 1);
                let name = format!("calls.{}", mode.as_str());
                inner.metrics.add(&name, 1);
                if let Some(prev) = inner.last_call.insert(*target, now) {
                    inner
                        .metrics
                        .observe("call.gap.cycles", now - prev, &CALL_GAP_BOUNDS);
                }
            }
            TraceEvent::TranslationBegin { func_pc } => {
                inner.metrics.add("translation.attempts", 1);
                inner.translation_begin.insert(*func_pc, now);
            }
            TraceEvent::TranslationCommit { func_pc, uops, .. } => {
                inner.metrics.add("translation.commits", 1);
                inner
                    .metrics
                    .observe("translation.uops", *uops, &UOPS_BOUNDS);
                if let Some(begin) = inner.translation_begin.remove(func_pc) {
                    inner.metrics.observe(
                        "translation.latency.cycles",
                        now - begin,
                        &LATENCY_BOUNDS,
                    );
                }
            }
            TraceEvent::TranslationAbort { func_pc, reason } => {
                let name = format!("translator.abort.{reason}");
                inner.metrics.add(&name, 1);
                inner.translation_begin.remove(func_pc);
            }
            TraceEvent::McacheHit { .. } => inner.metrics.add("mcache.hit", 1),
            TraceEvent::McacheMiss { .. } => inner.metrics.add("mcache.miss", 1),
            TraceEvent::McachePending { .. } => inner.metrics.add("mcache.pending", 1),
            TraceEvent::McacheInsert { .. } => inner.metrics.add("mcache.insert", 1),
            TraceEvent::McacheEvict { .. } => inner.metrics.add("mcache.evict", 1),
            TraceEvent::McacheInvalidate { .. } => inner.metrics.add("mcache.invalidate", 1),
            TraceEvent::CacheMiss { cache, .. } => {
                let name = format!("{}.miss", cache.as_str());
                inner.metrics.add(&name, 1);
            }
            TraceEvent::InstrRetired { vector, .. } => {
                inner.metrics.add("instr.retired", 1);
                if *vector {
                    inner.metrics.add("instr.vector", 1);
                }
            }
            TraceEvent::InterruptInjected { .. } => inner.metrics.add("interrupts", 1),
            TraceEvent::CallExit { .. } | TraceEvent::TranslationProgress { .. } => {}
        }

        // Ring-buffer admission (high-volume kinds are gated).
        let admit = match &event {
            TraceEvent::InstrRetired { .. } => inner.config.instructions,
            TraceEvent::TranslationProgress { .. } => inner.config.progress,
            _ => true,
        };
        let seq = inner.seq;
        inner.seq += 1;
        if admit {
            if inner.ring.len() == inner.config.capacity {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(TraceRecord {
                seq,
                cycle: now,
                event,
            });
        }
    }

    /// Snapshot of the buffered records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.borrow().ring.iter().cloned().collect()
    }

    /// Records currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.borrow().ring.len()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().ring.is_empty()
    }

    /// Records dropped from the ring buffer (capacity pressure).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Total events emitted (buffered or not).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.inner.borrow().seq
    }

    /// How many events of `kind` were emitted — unaffected by ring drops
    /// or admission gating, so these tallies can be compared against the
    /// subsystem aggregate counters.
    #[must_use]
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.inner
            .borrow()
            .kind_counts
            .get(kind)
            .copied()
            .unwrap_or(0)
    }

    /// All per-kind tallies.
    #[must_use]
    pub fn kind_counts(&self) -> BTreeMap<&'static str, u64> {
        self.inner.borrow().kind_counts.clone()
    }

    /// A snapshot of the metrics registry.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.inner.borrow().metrics.clone()
    }

    /// The recorder configuration.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.inner.borrow().config
    }

    /// Opens a span named `name` on `track` at the current clock,
    /// recording both the cycle and the wall-clock instant. Returns a
    /// handle for [`Tracer::span_end`].
    pub fn span_begin(&self, track: Track, name: &str) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.spans.len() as u64;
        let order = inner.span_order;
        inner.span_order += 1;
        let slot = track.tid() as usize - 1;
        let depth = inner.open_depth[slot];
        inner.open_depth[slot] += 1;
        let record = SpanRecord {
            id,
            name: name.to_string(),
            track,
            depth,
            begin_order: order,
            end_order: None,
            begin_cycle: inner.now,
            end_cycle: None,
            begin_wall_ns: wall_ns(inner.epoch),
            end_wall_ns: None,
        };
        inner.spans.push(record);
        SpanId(id)
    }

    /// Closes the span at the current clock. Idempotent: ending an
    /// already-closed span (or an unknown id) does nothing, so the RAII
    /// guard composes with manual ends.
    pub fn span_end(&self, id: SpanId) {
        let mut inner = self.inner.borrow_mut();
        let order = inner.span_order;
        let now = inner.now;
        let wall = wall_ns(inner.epoch);
        let Some(span) = inner.spans.get_mut(id.index()) else {
            return;
        };
        if span.end_order.is_some() {
            return;
        }
        span.end_order = Some(order);
        span.end_cycle = Some(now);
        span.end_wall_ns = Some(wall);
        let slot = span.track.tid() as usize - 1;
        inner.span_order += 1;
        inner.open_depth[slot] = inner.open_depth[slot].saturating_sub(1);
    }

    /// Opens a span and returns an RAII guard that closes it on drop.
    #[must_use]
    pub fn span(&self, track: Track, name: &str) -> SpanGuard {
        SpanGuard::new(self.clone(), self.span_begin(track, name))
    }

    /// Snapshot of every span recorded so far (open ones included), in
    /// begin order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.borrow().spans.clone()
    }

    /// How many spans are currently open across all tracks.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.inner
            .borrow()
            .open_depth
            .iter()
            .map(|&d| d as usize)
            .sum()
    }
}

/// Nanoseconds elapsed since `epoch`, saturating at `u64::MAX`.
fn wall_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheKind, CallMode};

    #[test]
    fn clock_stamps_and_sequences() {
        let t = Tracer::new();
        t.set_now(10);
        t.emit(TraceEvent::McacheMiss { func_pc: 5 });
        t.set_now(99);
        t.emit(TraceEvent::McacheInsert {
            func_pc: 5,
            uops: 7,
        });
        let r = t.records();
        assert_eq!(r.len(), 2);
        assert_eq!((r[0].seq, r[0].cycle), (0, 10));
        assert_eq!((r[1].seq, r[1].cycle), (1, 99));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::with_config(TraceConfig {
            capacity: 4,
            ..TraceConfig::default()
        });
        for pc in 0..10u32 {
            t.emit(TraceEvent::McacheMiss { func_pc: pc });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.emitted(), 10);
        // Tallies are unaffected by drops.
        assert_eq!(t.kind_count("mcache-miss"), 10);
        assert_eq!(t.metrics().counter("mcache.miss"), 10);
        // The survivors are the newest records.
        assert_eq!(t.records()[0].seq, 6);
    }

    #[test]
    fn instruction_events_gated_but_tallied() {
        let t = Tracer::new();
        t.emit(TraceEvent::InstrRetired {
            pc: 0,
            vector: false,
        });
        assert!(t.is_empty());
        assert_eq!(t.kind_count("instr-retired"), 1);
        assert_eq!(t.metrics().counter("instr.retired"), 1);

        let t = Tracer::with_config(TraceConfig {
            instructions: true,
            ..TraceConfig::default()
        });
        t.emit(TraceEvent::InstrRetired {
            pc: 0,
            vector: true,
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.metrics().counter("instr.vector"), 1);
    }

    #[test]
    fn translation_latency_and_call_gap_metrics() {
        let t = Tracer::new();
        t.set_now(100);
        t.emit(TraceEvent::CallEnter {
            target: 7,
            mode: CallMode::Scalar,
        });
        t.emit(TraceEvent::TranslationBegin { func_pc: 7 });
        t.set_now(350);
        t.emit(TraceEvent::TranslationCommit {
            func_pc: 7,
            uops: 9,
            dynamic_instrs: 120,
        });
        t.set_now(400);
        t.emit(TraceEvent::CallEnter {
            target: 7,
            mode: CallMode::Simd,
        });
        let m = t.metrics();
        let lat = m.histogram("translation.latency.cycles").unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.max(), 250);
        let gap = m.histogram("call.gap.cycles").unwrap();
        assert_eq!(gap.max(), 300);
        assert_eq!(m.counter("calls.total"), 2);
        assert_eq!(m.counter("calls.simd"), 1);
    }

    #[test]
    fn abort_tallies_by_reason() {
        let t = Tracer::new();
        t.emit(TraceEvent::TranslationBegin { func_pc: 1 });
        t.emit(TraceEvent::TranslationAbort {
            func_pc: 1,
            reason: "cam-miss",
        });
        t.emit(TraceEvent::CacheMiss {
            cache: CacheKind::Instruction,
            addr: 4,
        });
        let m = t.metrics();
        assert_eq!(m.counter("translator.abort.cam-miss"), 1);
        assert_eq!(m.counter("icache.miss"), 1);
        // A later commit for the same pc must not produce a bogus latency
        // sample (the begin record was consumed by the abort).
        t.emit(TraceEvent::TranslationCommit {
            func_pc: 1,
            uops: 3,
            dynamic_instrs: 10,
        });
        assert!(t
            .metrics()
            .histogram("translation.latency.cycles")
            .is_none());
    }

    #[test]
    fn clones_share_the_recorder() {
        let a = Tracer::new();
        let b = a.clone();
        a.set_now(5);
        b.emit(TraceEvent::McacheHit { func_pc: 2 });
        assert_eq!(a.len(), 1);
        assert_eq!(a.records()[0].cycle, 5);
    }
}
