//! A lightweight metrics registry: named counters and fixed-bucket
//! histograms. No background threads, no atomics — the simulator is
//! single-threaded and metrics are read after (or between) runs.

use std::collections::BTreeMap;
use std::fmt;

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are inclusive upper edges; a sample lands in the first bucket
/// whose bound is `>= sample`, or in the implicit overflow bucket. The
/// bucket layout is fixed at construction — recording never allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Power-of-two inclusive upper edges `[1, 2, 4, …, 2^max_pow]` — the
/// canonical bucket layout for service latency/cycle histograms. Every
/// shard using the same `max_pow` gets an identical layout, so
/// [`Histogram::merge`] across shards is exact and the merged rendering
/// is byte-identical regardless of how samples were partitioned.
#[must_use]
pub fn pow2_bounds(max_pow: u32) -> Vec<u64> {
    (0..=max_pow.min(63)).map(|p| 1u64 << p).collect()
}

impl Histogram {
    /// Creates a power-of-two-bucket histogram (see [`pow2_bounds`]).
    #[must_use]
    pub fn pow2(max_pow: u32) -> Histogram {
        Histogram::new(&pow2_bounds(max_pow))
    }

    /// Creates a histogram with the given inclusive upper bucket edges
    /// (must be strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, sample: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| sample <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.max = self.max.max(sample);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive upper edges.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Histogram::bounds`] (the last
    /// entry is the overflow bucket).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate percentile (`p` in `0.0..=100.0`) from the bucket
    /// layout: the inclusive upper edge of the bucket containing the
    /// `ceil(p/100 × n)`-th smallest sample, or [`Histogram::max`] when it
    /// falls in the overflow bucket. Returns 0 with no samples.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Folds another histogram's samples into this one. Identical bucket
    /// layouts merge exactly; a different layout is re-binned by replaying
    /// each of `other`'s buckets at its inclusive upper edge (the overflow
    /// bucket replays at `other.max()`), preserving `count`, `sum`, and
    /// `max` exactly but only approximating the distribution.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let edge = if i < other.bounds.len() {
                    other.bounds[i]
                } else {
                    other.max
                };
                let idx = self
                    .bounds
                    .iter()
                    .position(|&b| edge <= b)
                    .unwrap_or(self.bounds.len());
                self.counts[idx] += c;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Median of a sample set (mean of the middle pair for even counts).
/// Returns 0.0 for an empty slice. The input need not be sorted.
#[must_use]
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Median absolute deviation — the robust spread estimator the regression
/// sentinel uses for noisy wall-clock throughput. A single sample (or an
/// empty slice) has zero spread by definition.
#[must_use]
pub fn mad(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = median(samples);
    let dev: Vec<f64> = samples.iter().map(|s| (s - m).abs()).collect();
    median(&dev)
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )?;
        let mut prev = 0u64;
        for (i, &b) in self.bounds.iter().enumerate() {
            if self.counts[i] > 0 {
                write!(f, " [{prev}..{b}]:{}", self.counts[i])?;
            }
            prev = b + 1;
        }
        if self.counts[self.bounds.len()] > 0 {
            write!(f, " [{prev}..]:{}", self.counts[self.bounds.len()])?;
        }
        Ok(())
    }
}

/// A registry of counters and histograms keyed by dotted names
/// (`"mcache.hit"`, `"translation.latency.cycles"`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to counter `name`, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Reads counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Registers a histogram with the given bucket edges if absent.
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records a sample into histogram `name`, registering it with the
    /// given default bounds on first use.
    pub fn observe(&mut self, name: &str, sample: u64, default_bounds: &[u64]) {
        self.register_histogram(name, default_bounds);
        self.histograms
            .get_mut(name)
            .expect("registered above")
            .observe(sample);
    }

    /// Reads a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Counters whose name starts with `prefix`, with the prefix stripped.
    /// Useful for abort-reason tallies (`metrics.with_prefix("translator.abort.")`).
    #[must_use]
    pub fn with_prefix(&self, prefix: &str) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(k, &v)| k.strip_prefix(prefix).map(|rest| (rest.to_string(), v)))
            .collect()
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge via [`Histogram::merge`] (names absent here are cloned in).
    /// Disjoint registries simply union.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, &v) in &other.counters {
            self.add(name, v);
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for s in [5, 10, 11, 99, 5000] {
            h.observe(s);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
        assert_eq!(h.max(), 5000);
        assert!((h.mean() - 1025.0).abs() < 1e-9);
        let text = h.to_string();
        assert!(text.contains("n=5"));
        assert!(text.contains("[0..10]:2"));
        assert!(text.contains("[1001..]:1"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn counters_and_prefixes() {
        let mut m = Metrics::new();
        m.add("translator.abort.cam-miss", 2);
        m.add("translator.abort.no-loop", 1);
        m.add("translator.abort.cam-miss", 1);
        m.add("mcache.hit", 7);
        assert_eq!(m.counter("translator.abort.cam-miss"), 3);
        assert_eq!(m.counter("missing"), 0);
        let aborts = m.with_prefix("translator.abort.");
        assert_eq!(aborts.len(), 2);
        assert_eq!(aborts["cam-miss"], 3);
        assert_eq!(aborts["no-loop"], 1);
    }

    #[test]
    fn observe_registers_on_first_use() {
        let mut m = Metrics::new();
        m.observe("lat", 42, &[10, 100]);
        m.observe("lat", 7, &[1]); // bounds ignored after registration
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bounds(), &[10, 100]);
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let h = Histogram::new(&[10, 100]);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn percentile_walks_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for s in [5, 6, 50, 60, 70, 80, 90, 99, 500, 9999] {
            h.observe(s);
        }
        assert_eq!(h.percentile(10.0), 10); // 1st of 10 → first bucket edge
        assert_eq!(h.percentile(50.0), 100);
        assert_eq!(h.percentile(90.0), 1000);
        assert_eq!(h.percentile(100.0), 9999); // overflow → observed max
    }

    #[test]
    fn median_and_mad_edge_cases() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(mad(&[42.0]), 0.0, "single-sample MAD is zero spread");
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 9.0]), 1.0);
    }

    #[test]
    fn merge_same_bounds_is_exact() {
        let mut a = Histogram::new(&[10, 100]);
        let mut b = Histogram::new(&[10, 100]);
        a.observe(5);
        b.observe(50);
        b.observe(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 5055);
        assert_eq!(a.max(), 5000);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
    }

    #[test]
    fn merge_different_bounds_rebins_but_keeps_totals() {
        let mut a = Histogram::new(&[1000]);
        let mut b = Histogram::new(&[10, 100]);
        b.observe(5);
        b.observe(50);
        b.observe(7000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 7055);
        assert_eq!(a.max(), 7000);
        // Edges 10 and 100 rebin under 1000; overflow replays at max 7000.
        assert_eq!(a.bucket_counts(), &[2, 1]);
    }

    #[test]
    fn pow2_bounds_double_and_cap_at_u64() {
        assert_eq!(pow2_bounds(3), vec![1, 2, 4, 8]);
        let h = Histogram::pow2(20);
        assert_eq!(h.bounds().len(), 21);
        assert_eq!(*h.bounds().last().unwrap(), 1 << 20);
        // max_pow beyond 63 clamps instead of overflowing the shift.
        assert_eq!(*pow2_bounds(80).last().unwrap(), 1u64 << 63);
    }

    #[test]
    fn shard_merge_is_partition_independent() {
        // The same sample multiset, partitioned over 1 vs N "shards",
        // must merge to byte-identical histograms (the metrics-v1
        // determinism requirement). Exactness holds because every shard
        // shares one pow2 layout.
        let samples: Vec<u64> = (0..257).map(|i| (i * i * 7 + 3) % 100_000).collect();
        let merged_of = |shards: usize| {
            let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::pow2(32)).collect();
            for (i, &s) in samples.iter().enumerate() {
                parts[i % shards].observe(s);
            }
            let mut merged = Histogram::pow2(32);
            for p in &parts {
                merged.merge(p);
            }
            merged
        };
        let one = merged_of(1);
        for shards in [2, 3, 8] {
            let n = merged_of(shards);
            assert_eq!(one, n, "merge at 1 shard == merge at {shards}");
            assert_eq!(one.to_string(), n.to_string(), "rendering identical");
        }
    }

    #[test]
    fn merge_disjoint_registries_unions() {
        let mut a = Metrics::new();
        a.add("only.a", 1);
        a.add("shared", 2);
        a.observe("hist.a", 5, &[10]);
        let mut b = Metrics::new();
        b.add("only.b", 10);
        b.add("shared", 3);
        b.observe("hist.b", 50, &[100]);
        a.merge(&b);
        assert_eq!(a.counter("only.a"), 1);
        assert_eq!(a.counter("only.b"), 10);
        assert_eq!(a.counter("shared"), 5);
        assert_eq!(a.histogram("hist.a").unwrap().count(), 1);
        assert_eq!(a.histogram("hist.b").unwrap().count(), 1);
        assert_eq!(a.histogram("hist.b").unwrap().bounds(), &[100]);
    }
}
