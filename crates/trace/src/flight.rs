//! The flight recorder: always-on, bounded, per-shard black-box telemetry
//! for long-lived services.
//!
//! A [`FlightRecorder`] holds one bounded ring of [`FlightRecord`]s per
//! shard. The hot path ([`FlightRecorder::record`]) never blocks: each
//! ring sits behind a `try_lock`, so a writer that collides with a
//! concurrent drain (or another writer on the same shard) drops the event
//! and bumps a `contended` counter instead of waiting — recording is
//! strictly best-effort and strictly bounded. Overflow inside a ring
//! drops the *oldest* record, black-box style: the buffer always holds
//! the most recent window of activity, which is exactly what an incident
//! dump wants.
//!
//! Every record is stamped with a globally ordered sequence number, a
//! wall-clock offset from recorder creation, the shard that served it,
//! and the request's causality context (id, op, translation-cache
//! generation). [`drain`](FlightRecorder::drain) empties every ring in
//! ascending shard order and restores the global order by seq — the
//! deterministic merge the `flight-v1` dump format requires.
//!
//! Serialization is hand-rolled (this crate has no dependencies): a dump
//! is one `flight-v1` header line plus one JSON object per event, and a
//! folded-stacks sidecar (`service;op;stage count` lines) for flamegraph
//! tooling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag of a dump's header line.
pub const FLIGHT_SCHEMA: &str = "flight-v1";

/// Default per-shard ring capacity (records, not bytes).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// The request-lifecycle stages a service records, in lifecycle order.
/// `Probe` is the translation-cache lookup; `Translate` and `Execute`
/// only appear on a miss (a hit skips straight to `Respond`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightStage {
    /// A request line arrived on a connection.
    Accept,
    /// The line parsed (or failed to parse) into a request.
    Parse,
    /// The program resolved from the build cache (compiled or hit).
    Build,
    /// Translation-cache lookup; `detail` says `hit` or `miss`.
    Probe,
    /// Computing the response on a miss — the service-level translation.
    Translate,
    /// The simulation/execution finished; `cycles` is its cost.
    Execute,
    /// The response body is final; `ok`/`detail` carry the outcome.
    Respond,
    /// A worker panic was contained; `detail` is the payload text.
    Panic,
}

impl FlightStage {
    /// Stable lowercase wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlightStage::Accept => "accept",
            FlightStage::Parse => "parse",
            FlightStage::Build => "build",
            FlightStage::Probe => "probe",
            FlightStage::Translate => "translate",
            FlightStage::Execute => "execute",
            FlightStage::Respond => "respond",
            FlightStage::Panic => "panic",
        }
    }
}

/// One request-lifecycle event, before the recorder stamps it.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Request id as text (empty when the request carried none).
    pub id: String,
    /// Operation name (`run`, `translate`, … or `invalid`).
    pub op: String,
    /// Lifecycle stage.
    pub stage: FlightStage,
    /// Whether the stage succeeded (parse errors, error responses, panics
    /// record `false`).
    pub ok: bool,
    /// Stage-specific detail: `hit`/`miss` for probes, the error kind for
    /// failed responds, the panic payload, the backend for executes.
    pub detail: String,
    /// Simulated cycles attributable to the stage (0 when inapplicable).
    pub cycles: u64,
    /// Translation-cache generation (monotonic insert count) observed at
    /// the stage — the causality stamp linking an event to the cache
    /// state it saw.
    pub generation: u64,
}

impl FlightEvent {
    /// A minimal event: everything defaulted except id, op, and stage.
    #[must_use]
    pub fn new(id: &str, op: &str, stage: FlightStage) -> FlightEvent {
        FlightEvent {
            id: id.to_string(),
            op: op.to_string(),
            stage,
            ok: true,
            detail: String::new(),
            cycles: 0,
            generation: 0,
        }
    }

    /// Sets the success flag.
    #[must_use]
    pub fn ok(mut self, ok: bool) -> FlightEvent {
        self.ok = ok;
        self
    }

    /// Sets the detail text.
    #[must_use]
    pub fn detail(mut self, detail: &str) -> FlightEvent {
        self.detail = detail.to_string();
        self
    }

    /// Sets the cycle cost.
    #[must_use]
    pub fn cycles(mut self, cycles: u64) -> FlightEvent {
        self.cycles = cycles;
        self
    }

    /// Sets the cache-generation stamp.
    #[must_use]
    pub fn generation(mut self, generation: u64) -> FlightEvent {
        self.generation = generation;
        self
    }
}

/// A stamped event as stored in a ring: the recorder adds the global
/// sequence number, the wall-clock offset, and the shard.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Global sequence number (total order across all shards).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub wall_us: u64,
    /// Shard that recorded the event.
    pub shard: u32,
    /// The event itself.
    pub event: FlightEvent,
}

struct Ring {
    buf: VecDeque<FlightRecord>,
    dropped: u64,
}

/// Per-shard bounded rings with non-blocking writers — see the module
/// docs for the full contract.
pub struct FlightRecorder {
    backend: String,
    capacity: usize,
    rings: Vec<Mutex<Ring>>,
    seq: AtomicU64,
    events: AtomicU64,
    dropped: AtomicU64,
    contended: AtomicU64,
    started: Instant,
}

impl FlightRecorder {
    /// Creates a recorder with `shards` rings of `capacity` records each.
    /// `backend` is stamped into dump headers. A zero capacity disables
    /// recording entirely (every record is counted as dropped) — the
    /// overhead-measurement escape hatch.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, backend: &str) -> FlightRecorder {
        let shards = shards.max(1);
        FlightRecorder {
            backend: backend.to_string(),
            capacity,
            rings: (0..shards)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::with_capacity(capacity.min(1024)),
                        dropped: 0,
                    })
                })
                .collect(),
            seq: AtomicU64::new(0),
            events: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Number of shard rings.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Per-shard ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (dropped ones included).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Records dropped: ring overflow plus zero-capacity discards.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events discarded because the writer refused to wait for a busy
    /// ring lock — the price of a never-blocking hot path.
    #[must_use]
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Records one event into `shard`'s ring (shards out of range wrap).
    /// Never blocks: a busy ring drops the event and counts it under
    /// [`contended`](FlightRecorder::contended); a full ring drops its
    /// oldest record. Returns the event's global sequence number.
    pub fn record(&self, shard: usize, event: FlightEvent) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return seq;
        }
        let shard = shard % self.rings.len();
        let record = FlightRecord {
            seq,
            wall_us: self.started.elapsed().as_micros() as u64,
            shard: shard as u32,
            event,
        };
        match self.rings[shard].try_lock() {
            Ok(mut ring) => {
                if ring.buf.len() >= self.capacity {
                    ring.buf.pop_front();
                    ring.dropped += 1;
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                ring.buf.push_back(record);
            }
            Err(_) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
            }
        }
        seq
    }

    /// Empties every ring — ascending shard order, then global seq order —
    /// and returns the merged records. The rings keep recording while a
    /// drain is in flight (writers that collide with the drain drop their
    /// event rather than wait).
    #[must_use]
    pub fn drain(&self) -> Vec<FlightRecord> {
        let mut out = Vec::new();
        for ring in &self.rings {
            let mut ring = ring.lock().expect("flight ring poisoned");
            out.extend(ring.buf.drain(..));
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Renders a full `flight-v1` dump: the header line followed by one
    /// JSON object per drained record, newline-terminated.
    #[must_use]
    pub fn dump(&self, reason: &str, records: &[FlightRecord]) -> String {
        let mut out = String::with_capacity(64 + records.len() * 128);
        out.push_str(&format!(
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"reason\":\"{}\",\"backend\":\"{}\",\
             \"shards\":{},\"capacity\":{},\"events\":{},\"dropped\":{},\"contended\":{}}}\n",
            escape(reason),
            escape(&self.backend),
            self.rings.len(),
            self.capacity,
            self.events(),
            self.dropped(),
            self.contended(),
        ));
        for r in records {
            out.push_str(&record_line(r));
            out.push('\n');
        }
        out
    }
}

/// One `flight-v1` event line (no trailing newline).
#[must_use]
pub fn record_line(r: &FlightRecord) -> String {
    format!(
        "{{\"seq\":{},\"wall_us\":{},\"shard\":{},\"id\":\"{}\",\"op\":\"{}\",\
         \"stage\":\"{}\",\"ok\":{},\"detail\":\"{}\",\"cycles\":{},\"gen\":{}}}",
        r.seq,
        r.wall_us,
        r.shard,
        escape(&r.event.id),
        escape(&r.event.op),
        r.event.stage.name(),
        r.event.ok,
        escape(&r.event.detail),
        r.event.cycles,
        r.event.generation,
    )
}

/// Folds drained records into flamegraph input: one line per distinct
/// `service;op;stage` path with the event count as its weight, sorted by
/// path — the sidecar every dump ships next to its JSONL.
#[must_use]
pub fn folded_events(service: &str, records: &[FlightRecord]) -> String {
    let mut tally: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for r in records {
        let path = format!("{service};{};{}", r.event.op, r.event.stage.name());
        *tally.entry(path).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (path, count) in tally {
        out.push_str(&format!("{path} {count}\n"));
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: &str, stage: FlightStage) -> FlightEvent {
        FlightEvent::new(id, "run", stage)
    }

    #[test]
    fn overflow_drops_oldest_keeps_newest() {
        let rec = FlightRecorder::new(1, 3, "interp");
        for i in 0..5 {
            rec.record(0, ev(&format!("r{i}"), FlightStage::Accept));
        }
        let drained = rec.drain();
        assert_eq!(drained.len(), 3, "ring holds exactly its capacity");
        let ids: Vec<&str> = drained.iter().map(|r| r.event.id.as_str()).collect();
        assert_eq!(ids, ["r2", "r3", "r4"], "oldest two dropped");
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.events(), 5);
    }

    #[test]
    fn writer_never_blocks_on_a_held_ring() {
        let rec = FlightRecorder::new(1, 8, "interp");
        rec.record(0, ev("before", FlightStage::Accept));
        {
            // Simulate a drain in flight: hold the ring lock and record.
            let _held = rec.rings[0].lock().unwrap();
            let start = Instant::now();
            rec.record(0, ev("during", FlightStage::Accept));
            assert!(
                start.elapsed() < std::time::Duration::from_millis(50),
                "record must not wait for the lock"
            );
        }
        rec.record(0, ev("after", FlightStage::Accept));
        assert_eq!(rec.contended(), 1, "the contended write was dropped");
        let ids: Vec<String> = rec.drain().into_iter().map(|r| r.event.id).collect();
        assert_eq!(ids, ["before", "after"]);
    }

    #[test]
    fn drain_merges_shards_in_global_seq_order() {
        let rec = FlightRecorder::new(3, 16, "interp");
        // Interleave shards; seq is global, so drain must restore order.
        rec.record(2, ev("a", FlightStage::Accept));
        rec.record(0, ev("b", FlightStage::Parse));
        rec.record(1, ev("c", FlightStage::Respond));
        rec.record(2, ev("d", FlightStage::Respond));
        let drained = rec.drain();
        let seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3]);
        let shards: Vec<u32> = drained.iter().map(|r| r.shard).collect();
        assert_eq!(shards, [2, 0, 1, 2]);
        assert!(rec.drain().is_empty(), "drain empties the rings");
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let rec = FlightRecorder::new(2, 0, "interp");
        rec.record(0, ev("x", FlightStage::Accept));
        assert_eq!(rec.events(), 1);
        assert_eq!(rec.dropped(), 1);
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn dump_is_parseable_flight_v1_lines() {
        let rec = FlightRecorder::new(2, 8, "superblock");
        rec.record(0, ev("r0", FlightStage::Accept));
        rec.record(
            1,
            ev("r\"1\"", FlightStage::Respond)
                .ok(false)
                .detail("budget-exceeded")
                .cycles(42)
                .generation(7),
        );
        let records = rec.drain();
        let dump = rec.dump("worker-panic", &records);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"flight-v1\""));
        assert!(lines[0].contains("\"reason\":\"worker-panic\""));
        assert!(lines[0].contains("\"backend\":\"superblock\""));
        assert!(lines[1].contains("\"stage\":\"accept\""));
        assert!(lines[2].contains("\"detail\":\"budget-exceeded\""));
        assert!(lines[2].contains("\"cycles\":42"));
        assert!(lines[2].contains("\"gen\":7"));
        assert!(lines[2].contains("\\\"1\\\""), "ids are JSON-escaped");
    }

    #[test]
    fn folded_events_tally_paths() {
        let rec = FlightRecorder::new(1, 8, "interp");
        rec.record(0, ev("a", FlightStage::Accept));
        rec.record(0, ev("a", FlightStage::Respond));
        rec.record(0, ev("b", FlightStage::Accept));
        let folded = folded_events("serve", &rec.drain());
        assert_eq!(folded, "serve;run;accept 2\nserve;run;respond 1\n");
    }
}
