//! Unified tracing and metrics for the Liquid SIMD pipeline.
//!
//! The simulator's correctness story (and the paper's argument) is built on
//! *dynamic* events: the post-retirement translator shadowing a retired
//! stream, translations committing or aborting, microcode-cache residency
//! changing, early calls of a loop still running scalar while translation
//! races them. This crate gives every component a shared, dependency-free
//! way to record those moments:
//!
//! * [`TraceEvent`] — the event schema, from instruction retire to
//!   interrupt injection, each tagged with a subsystem [`Track`].
//! * [`Tracer`] — a cheaply cloneable handle over a bounded ring-buffer
//!   recorder plus per-kind tallies. A machine built *without* a tracer
//!   pays only a branch per emit site.
//! * [`Metrics`] — named counters and fixed-bucket [`Histogram`]s
//!   (translation latency, cycles between calls, abort-reason tallies),
//!   maintained by the tracer as events stream through it.
//! * [`span`] — named durations with per-track nesting and both sim-cycle
//!   and wall-clock deltas ([`Tracer::span_begin`]/[`Tracer::span_end`] or
//!   the RAII [`Tracer::span`]), aggregated by name for profile reports.
//! * [`export`] — JSON-lines, Chrome trace-event format (one track per
//!   subsystem, loadable in Perfetto / `chrome://tracing`), and a
//!   human-readable summary.
//! * [`flight`] — the always-on service flight recorder: per-shard
//!   bounded rings of request-lifecycle events with a never-blocking
//!   hot path, drained into `flight-v1` JSONL black-box dumps.
//!
//! ```
//! use liquid_simd_trace::{CallMode, TraceEvent, Tracer};
//!
//! let tracer = Tracer::new();
//! tracer.set_now(120);
//! tracer.emit(TraceEvent::CallEnter { target: 8, mode: CallMode::Scalar });
//! tracer.emit(TraceEvent::TranslationBegin { func_pc: 8 });
//! tracer.set_now(450);
//! tracer.emit(TraceEvent::TranslationCommit {
//!     func_pc: 8,
//!     uops: 9,
//!     dynamic_instrs: 130,
//! });
//! assert_eq!(tracer.kind_count("translation-commit"), 1);
//! let lat = tracer.metrics();
//! let lat = lat.histogram("translation.latency.cycles").unwrap();
//! assert_eq!(lat.max(), 330);
//! println!("{}", liquid_simd_trace::export::summary(&tracer));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use event::{CacheKind, CallMode, TraceEvent, TraceRecord, Track};
pub use flight::{
    FlightEvent, FlightRecord, FlightRecorder, FlightStage, DEFAULT_FLIGHT_CAPACITY, FLIGHT_SCHEMA,
};
pub use metrics::{pow2_bounds, Histogram, Metrics};
pub use span::{SpanAgg, SpanGuard, SpanId, SpanRecord};
pub use tracer::{TraceConfig, Tracer, DEFAULT_CAPACITY};
