//! The dynamic-event schema of the pipeline.
//!
//! Every observable moment of a Liquid SIMD run is one [`TraceEvent`]: the
//! pipeline retiring an instruction, an outlined call entering or leaving,
//! the post-retirement translator making progress or aborting, microcode
//! cache residency changing, memory misses, interrupt injection. Events are
//! plain data — no references back into the simulator — so recorded traces
//! outlive the machine that produced them.

/// How an outlined-function call was serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallMode {
    /// Executed the scalar fallback body.
    Scalar,
    /// Executed translated SIMD microcode.
    Simd,
}

impl CallMode {
    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CallMode::Scalar => "scalar",
            CallMode::Simd => "simd",
        }
    }
}

/// Which hardware cache an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheKind {
    /// The instruction cache.
    Instruction,
    /// The data cache.
    Data,
}

impl CacheKind {
    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheKind::Instruction => "icache",
            CacheKind::Data => "dcache",
        }
    }
}

/// The subsystem an event belongs to — one Chrome-trace track each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// Fetch/execute/retire and call handling.
    Pipeline,
    /// The post-retirement dynamic translator.
    Translator,
    /// The microcode cache.
    Mcache,
    /// The I/D cache hierarchy.
    Memory,
}

impl Track {
    /// Stable display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Track::Pipeline => "pipeline",
            Track::Translator => "translator",
            Track::Mcache => "mcache",
            Track::Memory => "memory",
        }
    }

    /// Chrome-trace thread id for this track.
    #[must_use]
    pub fn tid(self) -> u32 {
        match self {
            Track::Pipeline => 1,
            Track::Translator => 2,
            Track::Mcache => 3,
            Track::Memory => 4,
        }
    }

    /// All tracks, in tid order.
    pub const ALL: [Track; 4] = [
        Track::Pipeline,
        Track::Translator,
        Track::Mcache,
        Track::Memory,
    ];
}

/// One dynamic event in the pipeline's lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction retired. High-volume: recorded in the ring buffer only
    /// when [`TraceConfig::instructions`](crate::TraceConfig::instructions)
    /// is set, but always tallied.
    InstrRetired {
        /// Code index (program stream) or microcode position.
        pc: u32,
        /// Whether the instruction was a vector operation.
        vector: bool,
    },
    /// An outlined (or plain) function call entered.
    CallEnter {
        /// Callee entry PC.
        target: u32,
        /// How the call is serviced.
        mode: CallMode,
    },
    /// A call returned to its caller.
    CallExit {
        /// Callee entry PC.
        target: u32,
        /// How the call was serviced.
        mode: CallMode,
    },
    /// The translator started shadowing an outlined function.
    TranslationBegin {
        /// Entry PC of the function under translation.
        func_pc: u32,
    },
    /// The translator observed another slice of the retired stream.
    /// Recorded in the ring buffer only when
    /// [`TraceConfig::progress`](crate::TraceConfig::progress) is set.
    TranslationProgress {
        /// Entry PC of the function under translation.
        func_pc: u32,
        /// Dynamic instructions observed so far in this attempt.
        observed: u64,
    },
    /// A translation finished and its microcode was handed to the cache.
    TranslationCommit {
        /// Entry PC of the translated function.
        func_pc: u32,
        /// Microcode instructions produced.
        uops: u64,
        /// Dynamic scalar instructions observed during translation.
        dynamic_instrs: u64,
    },
    /// A translation attempt was abandoned; scalar code remains the
    /// fallback.
    TranslationAbort {
        /// Entry PC of the function whose translation aborted.
        func_pc: u32,
        /// Stable reason tag (matches `AbortReason::tag()` in the
        /// translator crate).
        reason: &'static str,
    },
    /// A microcode-cache lookup found ready microcode.
    McacheHit {
        /// Looked-up function entry PC.
        func_pc: u32,
    },
    /// A microcode-cache lookup found nothing.
    McacheMiss {
        /// Looked-up function entry PC.
        func_pc: u32,
    },
    /// A microcode-cache lookup found an entry still being written
    /// (translation latency not yet elapsed).
    McachePending {
        /// Looked-up function entry PC.
        func_pc: u32,
    },
    /// Microcode was inserted into the cache.
    McacheInsert {
        /// Function entry PC of the new entry.
        func_pc: u32,
        /// Microcode length in instructions.
        uops: u64,
    },
    /// A resident entry was evicted to make room.
    McacheEvict {
        /// Function entry PC of the victim.
        func_pc: u32,
    },
    /// The whole microcode cache was invalidated (context switch).
    McacheInvalidate {
        /// Entries that were resident.
        entries: u64,
    },
    /// An I- or D-cache miss.
    CacheMiss {
        /// Which cache missed.
        cache: CacheKind,
        /// The missing byte address.
        addr: u32,
    },
    /// A simulated interrupt was injected (externally aborts any in-flight
    /// translation).
    InterruptInjected {
        /// Instructions retired when the interrupt fired.
        retired: u64,
    },
}

impl TraceEvent {
    /// Stable kebab-case kind tag, used for tallies and export.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::InstrRetired { .. } => "instr-retired",
            TraceEvent::CallEnter { .. } => "call-enter",
            TraceEvent::CallExit { .. } => "call-exit",
            TraceEvent::TranslationBegin { .. } => "translation-begin",
            TraceEvent::TranslationProgress { .. } => "translation-progress",
            TraceEvent::TranslationCommit { .. } => "translation-commit",
            TraceEvent::TranslationAbort { .. } => "translation-abort",
            TraceEvent::McacheHit { .. } => "mcache-hit",
            TraceEvent::McacheMiss { .. } => "mcache-miss",
            TraceEvent::McachePending { .. } => "mcache-pending",
            TraceEvent::McacheInsert { .. } => "mcache-insert",
            TraceEvent::McacheEvict { .. } => "mcache-evict",
            TraceEvent::McacheInvalidate { .. } => "mcache-invalidate",
            TraceEvent::CacheMiss { .. } => "cache-miss",
            TraceEvent::InterruptInjected { .. } => "interrupt",
        }
    }

    /// The subsystem track this event renders on.
    #[must_use]
    pub fn track(&self) -> Track {
        match self {
            TraceEvent::InstrRetired { .. }
            | TraceEvent::CallEnter { .. }
            | TraceEvent::CallExit { .. }
            | TraceEvent::InterruptInjected { .. } => Track::Pipeline,
            TraceEvent::TranslationBegin { .. }
            | TraceEvent::TranslationProgress { .. }
            | TraceEvent::TranslationCommit { .. }
            | TraceEvent::TranslationAbort { .. } => Track::Translator,
            TraceEvent::McacheHit { .. }
            | TraceEvent::McacheMiss { .. }
            | TraceEvent::McachePending { .. }
            | TraceEvent::McacheInsert { .. }
            | TraceEvent::McacheEvict { .. }
            | TraceEvent::McacheInvalidate { .. } => Track::Mcache,
            TraceEvent::CacheMiss { .. } => Track::Memory,
        }
    }
}

/// A recorded event: sequence number, cycle stamp, payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic emission index (gap-free across ring-buffer drops).
    pub seq: u64,
    /// Machine cycle at emission.
    pub cycle: u64,
    /// The event itself.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_tracks_are_stable() {
        let e = TraceEvent::TranslationAbort {
            func_pc: 3,
            reason: "cam-miss",
        };
        assert_eq!(e.kind(), "translation-abort");
        assert_eq!(e.track(), Track::Translator);
        assert_eq!(
            TraceEvent::CacheMiss {
                cache: CacheKind::Data,
                addr: 64
            }
            .track(),
            Track::Memory
        );
        assert_eq!(CallMode::Simd.as_str(), "simd");
        assert_eq!(Track::Mcache.tid(), 3);
    }
}
