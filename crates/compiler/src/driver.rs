//! Workloads and whole-program builds.
//!
//! A [`Workload`] is a benchmark: hot-loop kernels, initial array data, and
//! a repetition count. Three builds exist (see crate docs); all share the
//! same driver shape — a main loop that invokes each hot loop `reps` times,
//! mirroring how the paper's benchmarks call their outlined functions
//! repeatedly (Table 6 measures the spacing of exactly these calls).

use liquid_simd_isa::{
    encode::CMP_IMM_MAX, AluOp, Base, Cond, ElemType, MemWidth, Operand2, Program, ProgramBuilder,
    Reg,
};

use crate::datactx::DataCtx;
use crate::error::CompileError;
use crate::fission::fission;
use crate::ir::{ArrayData, DataEnv, Kernel, Node, ReduceInit};
use crate::native_gen::{emit_native, native_ok};
use crate::scalar_gen::{emit_scalar, Terminate};
use crate::MAX_OUTLINED_INSTRS;

/// A benchmark: kernels + data + repetition count.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name.
    pub name: String,
    /// Hot-loop kernels, executed in order each repetition.
    pub kernels: Vec<Kernel>,
    /// Initial array contents.
    pub data: DataEnv,
    /// How many times the kernel sequence runs.
    pub reps: u32,
}

impl Workload {
    /// Creates a workload.
    #[must_use]
    pub fn new(name: &str, kernels: Vec<Kernel>, data: DataEnv, reps: u32) -> Workload {
        Workload {
            name: name.to_string(),
            kernels,
            data,
            reps,
        }
    }

    /// Validates kernels against the data environment and driver limits.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Invalid`] describing the first problem.
    pub fn validate(&self) -> Result<(), CompileError> {
        let invalid = |kernel: &str, reason: String| CompileError::Invalid {
            kernel: kernel.to_string(),
            reason,
        };
        if self.reps == 0 || i64::from(self.reps) > i64::from(CMP_IMM_MAX) {
            return Err(invalid(
                &self.name,
                format!("reps {} out of range", self.reps),
            ));
        }
        let mut names: Vec<&str> = Vec::new();
        for k in &self.kernels {
            if names.contains(&k.name()) {
                return Err(invalid(
                    &self.name,
                    format!("duplicate kernel `{}`", k.name()),
                ));
            }
            names.push(k.name());
            if i64::from(k.trip()) > i64::from(CMP_IMM_MAX) {
                return Err(invalid(k.name(), format!("trip {} too large", k.trip())));
            }
            for node in k.nodes() {
                let check_array =
                    |name: &str, elem: ElemType, min_len: usize| -> Result<(), CompileError> {
                        if name.starts_with("__") {
                            return Err(invalid(
                                k.name(),
                                format!("array `{name}` uses a reserved prefix"),
                            ));
                        }
                        let (decl, data) = self
                            .data
                            .get(name)
                            .ok_or_else(|| invalid(k.name(), format!("missing array `{name}`")))?;
                        if *decl != elem {
                            return Err(invalid(
                                k.name(),
                                format!("array `{name}` declared {decl}, accessed as {elem}"),
                            ));
                        }
                        let variant_ok = match data {
                            ArrayData::Int(_) => !elem.is_float(),
                            ArrayData::F32(_) => elem.is_float(),
                        };
                        if !variant_ok {
                            return Err(invalid(
                                k.name(),
                                format!("array `{name}` storage mismatch"),
                            ));
                        }
                        if data.len() < min_len {
                            return Err(invalid(
                                k.name(),
                                format!("array `{name}` has {} < {min_len} elements", data.len()),
                            ));
                        }
                        Ok(())
                    };
                let widen = |elem: ElemType, wide: bool| {
                    if !wide {
                        elem
                    } else if elem.is_float() {
                        ElemType::F32
                    } else {
                        ElemType::I32
                    }
                };
                match node {
                    Node::Load {
                        array,
                        elem,
                        offset,
                        wide,
                        ..
                    } => {
                        check_array(
                            array,
                            widen(*elem, *wide),
                            k.trip() as usize + *offset as usize,
                        )?;
                    }
                    Node::Store {
                        array,
                        value,
                        offset,
                        wide,
                        ..
                    } => {
                        let elem = k.elem_of(*value).expect("store of value");
                        check_array(
                            array,
                            widen(elem, *wide),
                            k.trip() as usize + *offset as usize,
                        )?;
                    }
                    Node::Reduce { a, out, init, .. } => {
                        let is_float = k.is_float(*a);
                        let elem = if is_float {
                            ElemType::F32
                        } else {
                            ElemType::I32
                        };
                        check_array(out, elem, 1)?;
                        let init_ok = matches!(
                            (is_float, init),
                            (true, ReduceInit::F32(_)) | (false, ReduceInit::Int(_))
                        );
                        if !init_ok {
                            return Err(invalid(k.name(), "reduction init type mismatch".into()));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

/// One outlined function in a build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutlinedFn {
    /// Function label / sub-kernel name.
    pub name: String,
    /// Code index of the entry.
    pub entry: u32,
    /// Static instruction count (`label` to `ret`, inclusive) — the paper's
    /// Table 5 metric.
    pub instrs: usize,
}

/// A compiled workload.
#[derive(Clone, Debug)]
pub struct Build {
    /// The executable image.
    pub program: Program,
    /// Outlined hot-loop functions (empty for the plain build).
    pub outlined: Vec<OutlinedFn>,
}

/// Emits the shared data environment into a builder.
fn emit_data(b: &mut ProgramBuilder, env: &DataEnv) {
    for (name, (elem, data)) in &env.arrays {
        match data {
            ArrayData::Int(values) => match elem {
                ElemType::I8 => {
                    let v: Vec<i8> = values.iter().map(|&x| x as u8 as i8).collect();
                    b.add_i8s(name, &v);
                }
                ElemType::I16 => {
                    let v: Vec<i16> = values.iter().map(|&x| x as u16 as i16).collect();
                    b.add_i16s(name, &v);
                }
                _ => {
                    let v: Vec<i32> = values.iter().map(|&x| x as u32 as i32).collect();
                    b.add_i32s(name, &v);
                }
            },
            ArrayData::F32(values) => {
                b.add_f32s(name, values);
            }
        }
    }
}

/// Emits the main driver loop around `calls` function labels. If
/// `calls` is empty the caller inlines bodies via the returned
/// loop-structure hooks instead (plain build handles this itself).
fn emit_driver_around_calls(
    b: &mut ProgramBuilder,
    rep_sym: liquid_simd_isa::SymId,
    reps: u32,
    calls: &[liquid_simd_isa::Label],
    vectorizable: bool,
) {
    b.mov_imm(Reg::R1, 0);
    b.mov_imm(Reg::R0, 0);
    b.st(MemWidth::W, Reg::R1, Base::Sym(rep_sym), Reg::R0);
    let top = b.new_label();
    b.bind(top);
    for &f in calls {
        if vectorizable {
            b.bl_v(f);
        } else {
            b.bl(f);
        }
    }
    b.mov_imm(Reg::R0, 0);
    b.ld(MemWidth::W, Reg::R1, Base::Sym(rep_sym), Reg::R0);
    b.alu(AluOp::Add, Reg::R1, Reg::R1, Operand2::Imm(1));
    b.st(MemWidth::W, Reg::R1, Base::Sym(rep_sym), Reg::R0);
    b.cmp(Reg::R1, Operand2::Imm(reps as i32));
    b.b(Cond::Lt, top);
    b.halt();
}

/// Builds the Liquid SIMD binary: scalarized, outlined hot loops invoked
/// with `bl.v` (paper §3).
///
/// # Errors
///
/// Returns [`CompileError`] for invalid workloads or emission failures.
pub fn build_liquid(w: &Workload) -> Result<Build, CompileError> {
    w.validate()?;
    let mut subs: Vec<Kernel> = Vec::new();
    let mut temps: Vec<(String, ElemType, u32)> = Vec::new();
    for k in &w.kernels {
        let r = fission(k, MAX_OUTLINED_INSTRS)?;
        subs.extend(r.kernels);
        temps.extend(r.temps);
    }

    let mut b = ProgramBuilder::new();
    emit_data(&mut b, &w.data);
    for (name, elem, len) in &temps {
        b.reserve(name, *len as usize, elem.bytes());
    }
    let rep = b.reserve("__rep", 1, 4);

    let labels: Vec<_> = subs.iter().map(|_| b.new_label()).collect();
    emit_driver_around_calls(&mut b, rep, w.reps, &labels, true);

    let mut ctx = DataCtx::new();
    let mut outlined = Vec::new();
    for (k, &label) in subs.iter().zip(&labels) {
        let entry = b.here();
        b.bind_named(label, k.name());
        let instrs = emit_scalar(&mut b, &mut ctx, k, Terminate::Ret)?;
        outlined.push(OutlinedFn {
            name: k.name().to_string(),
            entry,
            instrs,
        });
    }
    let program = b.finish()?;
    Ok(Build { program, outlined })
}

/// Builds the plain scalar baseline: same scalar loops, inlined into the
/// driver (no outlining, no `bl` overhead) — the Figure 6 denominator.
///
/// # Errors
///
/// Returns [`CompileError`] for invalid workloads or emission failures.
pub fn build_plain(w: &Workload) -> Result<Build, CompileError> {
    w.validate()?;
    let mut subs: Vec<Kernel> = Vec::new();
    let mut temps: Vec<(String, ElemType, u32)> = Vec::new();
    for k in &w.kernels {
        let r = fission(k, MAX_OUTLINED_INSTRS)?;
        subs.extend(r.kernels);
        temps.extend(r.temps);
    }

    let mut b = ProgramBuilder::new();
    emit_data(&mut b, &w.data);
    for (name, elem, len) in &temps {
        b.reserve(name, *len as usize, elem.bytes());
    }
    let rep = b.reserve("__rep", 1, 4);
    let mut ctx = DataCtx::new();

    b.mov_imm(Reg::R1, 0);
    b.mov_imm(Reg::R0, 0);
    b.st(MemWidth::W, Reg::R1, Base::Sym(rep), Reg::R0);
    let top = b.new_label();
    b.bind(top);
    for k in &subs {
        emit_scalar(&mut b, &mut ctx, k, Terminate::FallThrough)?;
    }
    b.mov_imm(Reg::R0, 0);
    b.ld(MemWidth::W, Reg::R1, Base::Sym(rep), Reg::R0);
    b.alu(AluOp::Add, Reg::R1, Reg::R1, Operand2::Imm(1));
    b.st(MemWidth::W, Reg::R1, Base::Sym(rep), Reg::R0);
    b.cmp(Reg::R1, Operand2::Imm(w.reps as i32));
    b.b(Cond::Lt, top);
    b.halt();

    let program = b.finish()?;
    Ok(Build {
        program,
        outlined: Vec::new(),
    })
}

/// Builds the native SIMD binary at a given lane width — what a compiler
/// with built-in ISA support would produce. Kernels whose permutations
/// exceed the width fall back to their (fissioned) scalar form, exactly
/// the code a narrow-SIMD target would have to run.
///
/// # Errors
///
/// Returns [`CompileError`] for invalid workloads or emission failures.
pub fn build_native(w: &Workload, lanes: usize) -> Result<Build, CompileError> {
    w.validate()?;
    assert!(lanes >= 2, "native build needs a SIMD accelerator");

    // Decide per kernel; collect fission temps for fallback kernels.
    enum Plan {
        Native(Kernel),
        Scalar(Vec<Kernel>),
    }
    let mut plans: Vec<Plan> = Vec::new();
    let mut temps: Vec<(String, ElemType, u32)> = Vec::new();
    for k in &w.kernels {
        if native_ok(k, lanes) {
            plans.push(Plan::Native(k.clone()));
        } else {
            let r = fission(k, MAX_OUTLINED_INSTRS)?;
            temps.extend(r.temps);
            plans.push(Plan::Scalar(r.kernels));
        }
    }

    let mut b = ProgramBuilder::new();
    emit_data(&mut b, &w.data);
    for (name, elem, len) in &temps {
        b.reserve(name, *len as usize, elem.bytes());
    }
    let rep = b.reserve("__rep", 1, 4);

    let mut labels = Vec::new();
    let mut flat: Vec<(bool, Kernel)> = Vec::new();
    for plan in plans {
        match plan {
            Plan::Native(k) => flat.push((true, k)),
            Plan::Scalar(ks) => flat.extend(ks.into_iter().map(|k| (false, k))),
        }
    }
    for _ in &flat {
        labels.push(b.new_label());
    }
    emit_driver_around_calls(&mut b, rep, w.reps, &labels, false);

    let mut ctx = DataCtx::new();
    let mut outlined = Vec::new();
    for ((is_native, k), &label) in flat.iter().zip(&labels) {
        let entry = b.here();
        b.bind_named(label, k.name());
        let instrs = if *is_native {
            emit_native(&mut b, &mut ctx, k, lanes, Terminate::Ret)?
        } else {
            emit_scalar(&mut b, &mut ctx, k, Terminate::Ret)?
        };
        outlined.push(OutlinedFn {
            name: k.name().to_string(),
            entry,
            instrs,
        });
    }
    let program = b.finish()?;
    Ok(Build { program, outlined })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayBuilder, KernelBuilder};
    use liquid_simd_isa::VAluOp;

    fn simple_workload() -> Workload {
        let mut k = KernelBuilder::new("scale", 32);
        let a = k.load("A", ElemType::I32);
        let c = k.bin_imm(VAluOp::Mul, a, 7);
        k.store("B", c);
        let data = ArrayBuilder::new()
            .int("A", ElemType::I32, (0..32).collect::<Vec<i64>>())
            .zeroed("B", ElemType::I32, 32)
            .build();
        Workload::new("simple", vec![k.build().unwrap()], data, 3)
    }

    #[test]
    fn all_three_builds_produce_programs() {
        let w = simple_workload();
        let liquid = build_liquid(&w).unwrap();
        let native = build_native(&w, 8).unwrap();
        let plain = build_plain(&w).unwrap();
        assert_eq!(liquid.outlined.len(), 1);
        assert!(plain.outlined.is_empty());
        assert!(native
            .program
            .code
            .iter()
            .any(liquid_simd_isa::Inst::is_vector));
        assert!(!liquid
            .program
            .code
            .iter()
            .any(liquid_simd_isa::Inst::is_vector));
        // Code-size ordering: liquid adds only the bl/ret pair vs plain.
        let overhead = liquid.program.code.len() as i64 - plain.program.code.len() as i64;
        assert!((1..=6).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn validation_rejects_missing_and_mistyped_arrays() {
        let mut w = simple_workload();
        w.data.arrays.remove("B");
        assert!(build_liquid(&w).is_err());

        let mut w2 = simple_workload();
        // Re-declare A as f32.
        w2.data = ArrayBuilder::new()
            .f32("A", vec![0.0; 32])
            .zeroed("B", ElemType::I32, 32)
            .build();
        assert!(build_liquid(&w2).is_err());
    }

    #[test]
    fn duplicate_kernel_names_rejected() {
        let w = simple_workload();
        let mut w2 = w.clone();
        w2.kernels.push(w.kernels[0].clone());
        assert!(matches!(w2.validate(), Err(CompileError::Invalid { .. })));
    }

    #[test]
    fn reserved_array_prefix_rejected() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("__sneaky", ElemType::I32);
        k.store("__sneaky2", a);
        let data = ArrayBuilder::new()
            .int("__sneaky", ElemType::I32, vec![0; 16])
            .zeroed("__sneaky2", ElemType::I32, 16)
            .build();
        let w = Workload::new("bad", vec![k.build().unwrap()], data, 1);
        assert!(w.validate().is_err());
    }
}
