//! Compiler errors.

use std::error::Error;
use std::fmt;

use liquid_simd_isa::IsaError;

/// Errors raised while validating kernels or generating code.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// A kernel failed validation.
    Invalid {
        /// Kernel name.
        kernel: String,
        /// Explanation.
        reason: String,
    },
    /// Register pools exhausted even after fission.
    RegisterPressure {
        /// Kernel name.
        kernel: String,
    },
    /// The gold evaluator hit a malformed dataflow graph — a node
    /// referencing an unevaluated or untyped value. Builder-validated IR
    /// never triggers this; hand- or fuzz-constructed kernels can, and the
    /// driver reports it instead of crashing.
    Gold {
        /// Kernel name.
        kernel: String,
        /// Index of the offending node in the kernel body.
        node: usize,
        /// Explanation.
        reason: String,
    },
    /// An ISA-level error surfaced during emission.
    Isa(IsaError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid { kernel, reason } => {
                write!(f, "kernel `{kernel}` is invalid: {reason}")
            }
            CompileError::RegisterPressure { kernel } => {
                write!(f, "kernel `{kernel}` exceeds the register files")
            }
            CompileError::Gold {
                kernel,
                node,
                reason,
            } => {
                write!(
                    f,
                    "gold evaluation of `{kernel}` failed at node {node}: {reason}"
                )
            }
            CompileError::Isa(e) => write!(f, "emission failed: {e}"),
        }
    }
}

impl Error for CompileError {}

impl From<IsaError> for CompileError {
    fn from(e: IsaError) -> CompileError {
        CompileError::Isa(e)
    }
}
