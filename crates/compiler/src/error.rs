//! Compiler errors.

use std::error::Error;
use std::fmt;

use liquid_simd_isa::IsaError;

/// Errors raised while validating kernels or generating code.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// A kernel failed validation.
    Invalid {
        /// Kernel name.
        kernel: String,
        /// Explanation.
        reason: String,
    },
    /// Register pools exhausted even after fission.
    RegisterPressure {
        /// Kernel name.
        kernel: String,
    },
    /// An ISA-level error surfaced during emission.
    Isa(IsaError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid { kernel, reason } => {
                write!(f, "kernel `{kernel}` is invalid: {reason}")
            }
            CompileError::RegisterPressure { kernel } => {
                write!(f, "kernel `{kernel}` exceeds the register files")
            }
            CompileError::Isa(e) => write!(f, "emission failed: {e}"),
        }
    }
}

impl Error for CompileError {}

impl From<IsaError> for CompileError {
    fn from(e: IsaError) -> CompileError {
        CompileError::Isa(e)
    }
}
