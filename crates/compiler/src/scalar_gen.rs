//! Scalar code generation — the Liquid SIMD scalarized representation
//! (paper §3.2, Table 1) and the plain-scalar baseline.
//!
//! One kernel becomes one scalar loop processing one element per
//! iteration:
//!
//! * vector loads/stores → element loads/stores indexed by the induction
//!   variable (categories 5/6);
//! * data-parallel ops → their scalar equivalents (category 1/2), with
//!   saturating ops expanded to predicated idioms (`add; cmp; movgt`);
//! * wide constants → loads from compiler-emitted `cnst` arrays
//!   (category 3);
//! * reductions → loop-carried accumulator registers (category 4);
//! * permutations → offset-array loads added to the induction variable
//!   (categories 7/8) — mid-dataflow permutations must have been fissioned
//!   away first.
//!
//! Register conventions: `r0` induction, `r1`–`r10` integer values,
//! `r11` permutation address scratch, `r12` zero index for prologue and
//! epilogue memory accesses, `f0`–`f14` float values.

use liquid_simd_isa::{
    encode::{MOV_IMM_MAX, MOV_IMM_MIN},
    AluOp, Base, Cond, ElemType, FReg, FpOp, MemWidth, Operand2, ProgramBuilder, RedOp, Reg,
    VAluOp,
};

use crate::alloc::{allocate, Assignment, PoolSpec};
use crate::datactx::DataCtx;
use crate::error::CompileError;
use crate::ir::{Kernel, Node, NodeId, ReduceInit};

/// Whether the generated code ends with `ret` (outlined function) or falls
/// through (inlined baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Terminate {
    Ret,
    FallThrough,
}

const IND: Reg = Reg::R0;
const SCRATCH: Reg = Reg::R11;
const ZIDX: Reg = Reg::R12;

fn invalid(kernel: &Kernel, reason: impl Into<String>) -> CompileError {
    CompileError::Invalid {
        kernel: kernel.name().to_string(),
        reason: reason.into(),
    }
}

fn mem_width(elem: ElemType) -> MemWidth {
    match elem {
        ElemType::I8 => MemWidth::B,
        ElemType::I16 => MemWidth::H,
        _ => MemWidth::W,
    }
}

fn scalar_fp_op(op: VAluOp) -> Option<FpOp> {
    match op {
        VAluOp::Add => Some(FpOp::Add),
        VAluOp::Sub => Some(FpOp::Sub),
        VAluOp::Mul => Some(FpOp::Mul),
        VAluOp::Div => Some(FpOp::Div),
        VAluOp::Min => Some(FpOp::Min),
        VAluOp::Max => Some(FpOp::Max),
        _ => None,
    }
}

/// The full-clamp idiom bounds for a saturating op at an element width:
/// wrapping arithmetic, clamp high, clamp low — exactly the lane semantics
/// of `vqaddu`/`vqadds` & co., so the dynamic translator can collapse the
/// five instructions back to one without changing any result.
fn sat_bounds(op: VAluOp, elem: ElemType) -> (AluOp, [(Cond, i32); 2]) {
    let (hi, lo) = match (op, elem) {
        (VAluOp::SatAdd | VAluOp::SatSub, ElemType::I8) => (255, 0),
        (VAluOp::SatAdd | VAluOp::SatSub, _) => (65535, 0),
        (_, ElemType::I8) => (127, -128),
        _ => (32767, -32768),
    };
    let base = match op {
        VAluOp::SatAdd | VAluOp::SSatAdd => AluOp::Add,
        VAluOp::SatSub | VAluOp::SSatSub => AluOp::Sub,
        _ => unreachable!("not a saturating op"),
    };
    (base, [(Cond::Gt, hi), (Cond::Lt, lo)])
}

/// Collects the reduction nodes of a kernel with their accumulator needs.
struct Reduces {
    /// `(node index, is_float)`.
    list: Vec<(usize, bool)>,
}

fn find_reduces(k: &Kernel) -> Reduces {
    let list = k
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match n {
            Node::Reduce { a, .. } => Some((i, k.is_float(*a))),
            _ => None,
        })
        .collect();
    Reduces { list }
}

/// Emits the scalar form of one kernel at the builder's current position.
/// Returns the number of instructions emitted.
pub(crate) fn emit_scalar(
    b: &mut ProgramBuilder,
    ctx: &mut DataCtx,
    k: &Kernel,
    terminate: Terminate,
) -> Result<usize, CompileError> {
    let start = b.here();
    let trip = k.trip() as i32;

    // Carve accumulator registers out of the pools.
    let reduces = find_reduces(k);
    let mut int_pool: Vec<u8> = (1..=10).collect();
    let mut fp_pool: Vec<u8> = (0..=14).collect();
    let mut acc_reg: Vec<(usize, u8)> = Vec::new();
    for &(node, is_float) in &reduces.list {
        let pool = if is_float {
            &mut fp_pool
        } else {
            &mut int_pool
        };
        let r = pool.pop().ok_or_else(|| CompileError::RegisterPressure {
            kernel: k.name().to_string(),
        })?;
        acc_reg.push((node, r));
    }
    // Hoist loop-invariant uniform constants into dedicated registers,
    // deduplicating identical values and leaving headroom in each pool for
    // loop-carried values; constants beyond the budget fall back to
    // in-loop constant-array loads.
    let mut hoist = k.hoistable_consts();
    let mut pinned: std::collections::BTreeMap<usize, u8> = std::collections::BTreeMap::new();
    let mut by_value: std::collections::BTreeMap<(bool, u32), u8> =
        std::collections::BTreeMap::new();
    const POOL_HEADROOM: usize = 5;
    for (i, h) in hoist.iter_mut().enumerate() {
        if !*h {
            continue;
        }
        let id = NodeId(i as u32);
        let is_float = k.is_float(id);
        let bits = k.uniform_const_bits(id).expect("hoistable const");
        if let Some(&r) = by_value.get(&(is_float, bits)) {
            pinned.insert(i, r);
            continue;
        }
        let pool = if is_float {
            &mut fp_pool
        } else {
            &mut int_pool
        };
        if pool.len() <= POOL_HEADROOM {
            *h = false; // budget exhausted: keep the in-loop load
            continue;
        }
        let r = pool.pop().expect("headroom checked");
        by_value.insert((is_float, bits), r);
        pinned.insert(i, r);
    }
    let asg = allocate(
        k,
        &PoolSpec::Split {
            int: int_pool,
            fp: fp_pool,
        },
        &pinned,
    )?;

    let acc_of = |node: usize| -> u8 {
        acc_reg
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, r)| *r)
            .expect("accumulator allocated")
    };

    // ---- prologue --------------------------------------------------------
    let hoisted_needs_pool = pinned.keys().any(|&i| {
        let id = NodeId(i as u32);
        let bits = k.uniform_const_bits(id).expect("hoisted const");
        k.is_float(id) || !(MOV_IMM_MIN..=MOV_IMM_MAX).contains(&(bits as i32))
    });
    let need_zidx = !reduces.list.is_empty() || hoisted_needs_pool;
    if need_zidx {
        b.mov_imm(ZIDX, 0);
    }
    for (&i, &r) in &pinned {
        let id = NodeId(i as u32);
        let bits = k.uniform_const_bits(id).expect("hoisted const");
        if k.is_float(id) {
            let sym = ctx.literal_f32(b, f32::from_bits(bits));
            b.ldf(FReg::of(r), Base::Sym(sym), ZIDX);
        } else {
            let v = bits as i32;
            if (MOV_IMM_MIN..=MOV_IMM_MAX).contains(&v) {
                b.mov_imm(Reg::of(r), v);
            } else {
                let sym = ctx.literal_i32(b, v);
                b.ld(MemWidth::W, Reg::of(r), Base::Sym(sym), ZIDX);
            }
        }
    }
    for &(node, _) in &reduces.list {
        let Node::Reduce { init, .. } = &k.nodes()[node] else {
            unreachable!()
        };
        let r = acc_of(node);
        match *init {
            ReduceInit::Int(v) => {
                if (MOV_IMM_MIN..=MOV_IMM_MAX).contains(&v) {
                    b.mov_imm(Reg::of(r), v);
                } else {
                    let sym = ctx.literal_i32(b, v);
                    b.ld(MemWidth::W, Reg::of(r), Base::Sym(sym), ZIDX);
                }
            }
            ReduceInit::F32(v) => {
                let sym = ctx.literal_f32(b, v);
                b.ldf(FReg::of(r), Base::Sym(sym), ZIDX);
            }
        }
    }
    b.mov_imm(IND, 0);
    let top = b.new_label();
    b.bind(top);

    // ---- body -------------------------------------------------------------
    let ireg = |id: NodeId| Reg::of(asg.reg[id.0 as usize].expect("int value register"));
    let freg = |id: NodeId| FReg::of(asg.reg[id.0 as usize].expect("fp value register"));

    for (i, node) in k.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        match node {
            Node::Load {
                array,
                elem,
                signed,
                offset,
                wide,
                perm,
            } => {
                let storage = if *wide {
                    if elem.is_float() {
                        ElemType::F32
                    } else {
                        ElemType::I32
                    }
                } else {
                    *elem
                };
                let arr = ctx
                    .alias(b, array, *offset, storage.bytes())
                    .ok_or_else(|| invalid(k, format!("unknown array `{array}`")))?;
                let index = match perm {
                    None => IND,
                    Some(kind) => {
                        let off = ctx.offsets(b, *kind, k.trip());
                        b.ld(MemWidth::W, SCRATCH, Base::Sym(off), IND);
                        b.alu(AluOp::Add, SCRATCH, IND, Operand2::Reg(SCRATCH));
                        SCRATCH
                    }
                };
                if storage == ElemType::F32 {
                    b.ldf(freg(id), Base::Sym(arr), index);
                } else if *signed && storage != ElemType::I32 {
                    // Sign extension only matters for narrow elements.
                    b.lds(mem_width(storage), ireg(id), Base::Sym(arr), index);
                } else {
                    b.ld(mem_width(storage), ireg(id), Base::Sym(arr), index);
                }
            }
            Node::ConstVecI { elem, pattern } => {
                if hoist[i] {
                    continue; // loaded once in the prologue
                }
                let sym = ctx.const_int(b, *elem, pattern, k.trip());
                if *elem == ElemType::I32 {
                    b.ld(MemWidth::W, ireg(id), Base::Sym(sym), IND);
                } else {
                    b.lds(mem_width(*elem), ireg(id), Base::Sym(sym), IND);
                }
            }
            Node::ConstVecF { pattern } => {
                if hoist[i] {
                    continue; // loaded once in the prologue
                }
                let sym = ctx.const_f32(b, pattern, k.trip());
                b.ldf(freg(id), Base::Sym(sym), IND);
            }
            Node::Bin { op, a, b: rhs } => {
                emit_scalar_op(b, k, &asg, *op, id, *a, Some(*rhs), None)?;
            }
            Node::BinImm { op, a, imm } => {
                emit_scalar_op(b, k, &asg, *op, id, *a, None, Some(*imm))?;
            }
            Node::Perm { .. } => {
                return Err(invalid(
                    k,
                    "mid-dataflow permutation survived fission (compiler bug)",
                ));
            }
            Node::Reduce { op, a, .. } => {
                let r = acc_of(i);
                if k.is_float(*a) {
                    let fop = match op {
                        RedOp::Sum => FpOp::Add,
                        RedOp::Min => FpOp::Min,
                        RedOp::Max => FpOp::Max,
                    };
                    b.falu(fop, FReg::of(r), FReg::of(r), freg(*a));
                } else {
                    let iop = match op {
                        RedOp::Sum => AluOp::Add,
                        RedOp::Min => AluOp::Min,
                        RedOp::Max => AluOp::Max,
                    };
                    b.alu(iop, Reg::of(r), Reg::of(r), Operand2::Reg(ireg(*a)));
                }
            }
            Node::Store {
                array,
                value,
                offset,
                wide,
                perm,
            } => {
                let elem = k.elem_of(*value).expect("store of value");
                let storage = if *wide {
                    if elem.is_float() {
                        ElemType::F32
                    } else {
                        ElemType::I32
                    }
                } else {
                    elem
                };
                let arr = ctx
                    .alias(b, array, *offset, storage.bytes())
                    .ok_or_else(|| invalid(k, format!("unknown array `{array}`")))?;
                let index = match perm {
                    None => IND,
                    Some(kind) => {
                        let off = ctx.offsets(b, *kind, k.trip());
                        b.ld(MemWidth::W, SCRATCH, Base::Sym(off), IND);
                        b.alu(AluOp::Add, SCRATCH, IND, Operand2::Reg(SCRATCH));
                        SCRATCH
                    }
                };
                if storage == ElemType::F32 {
                    b.stf(freg(*value), Base::Sym(arr), index);
                } else {
                    b.st(mem_width(storage), ireg(*value), Base::Sym(arr), index);
                }
            }
        }
    }

    // ---- loop control ------------------------------------------------------
    b.alu(AluOp::Add, IND, IND, Operand2::Imm(1));
    b.cmp(IND, Operand2::Imm(trip));
    b.b(Cond::Lt, top);

    // ---- epilogue -----------------------------------------------------------
    for &(node, is_float) in &reduces.list {
        let Node::Reduce { out, .. } = &k.nodes()[node] else {
            unreachable!()
        };
        let arr = b
            .symbol_named(out)
            .ok_or_else(|| invalid(k, format!("unknown array `{out}`")))?;
        let r = acc_of(node);
        if is_float {
            b.stf(FReg::of(r), Base::Sym(arr), ZIDX);
        } else {
            b.st(MemWidth::W, Reg::of(r), Base::Sym(arr), ZIDX);
        }
    }
    if terminate == Terminate::Ret {
        b.ret();
    }
    Ok((b.here() - start) as usize)
}

/// Emits the scalar equivalent of one element-wise op, expanding
/// saturating idioms. Exactly one of `rhs_node` / `imm` is `Some`.
#[allow(clippy::too_many_arguments)]
fn emit_scalar_op(
    b: &mut ProgramBuilder,
    k: &Kernel,
    asg: &Assignment,
    op: VAluOp,
    dst: NodeId,
    a: NodeId,
    rhs_node: Option<NodeId>,
    imm: Option<i32>,
) -> Result<(), CompileError> {
    let float = k.is_float(a);
    if float {
        let fop = scalar_fp_op(op)
            .ok_or_else(|| invalid(k, format!("{op} has no scalar fp equivalent")))?;
        let fd = FReg::of(asg.reg[dst.0 as usize].expect("fp dst"));
        let fa = FReg::of(asg.reg[a.0 as usize].expect("fp src"));
        let fb = match rhs_node {
            Some(nb) => FReg::of(asg.reg[nb.0 as usize].expect("fp src")),
            None => return Err(invalid(k, "fp op with integer immediate")),
        };
        b.falu(fop, fd, fa, fb);
        return Ok(());
    }
    let rhs = match (rhs_node, imm) {
        (Some(nb), None) => {
            Operand2::Reg(Reg::of(asg.reg[nb.0 as usize].expect("int value register")))
        }
        (None, Some(i)) => Operand2::Imm(i),
        _ => unreachable!("exactly one rhs form"),
    };
    let rd = Reg::of(asg.reg[dst.0 as usize].expect("int dst"));
    let ra = Reg::of(asg.reg[a.0 as usize].expect("int src"));
    match op {
        VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub => {
            let elem = k.elem_of(a).expect("value");
            let (base, clamps) = sat_bounds(op, elem);
            b.alu(base, rd, ra, rhs);
            for (cond, bound) in clamps {
                b.cmp(rd, Operand2::Imm(bound));
                b.mov_imm_cond(cond, rd, bound);
            }
        }
        _ => {
            let sop = op
                .scalar_equivalent()
                .ok_or_else(|| invalid(k, format!("{op} has no scalar equivalent")))?;
            b.alu(sop, rd, ra, rhs);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;
    use liquid_simd_isa::PermKind;

    fn emit(k: &Kernel) -> (liquid_simd_isa::Program, usize) {
        let mut b = ProgramBuilder::new();
        // Declare the arrays the kernels use.
        for name in ["A", "B", "C", "out"] {
            b.reserve(name, 64, 4);
        }
        let mut ctx = DataCtx::new();
        let f = b.new_label();
        b.bl_v(f);
        b.halt();
        b.bind_named(f, k.name());
        let n = emit_scalar(&mut b, &mut ctx, k, Terminate::Ret).unwrap();
        (b.finish().unwrap(), n)
    }

    #[test]
    fn simple_kernel_shape() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        let c = kb.bin_imm(VAluOp::Add, a, 1);
        kb.store("B", c);
        let (p, n) = emit(&kb.build().unwrap());
        // mov r0; ld; add; st; add; cmp; blt; ret
        assert_eq!(n, 8);
        let text = p.disassemble();
        assert!(text.contains("blt"), "{text}");
        assert!(text.contains("ldw r1, [A + r0]"), "{text}");
    }

    #[test]
    fn saturating_idiom_is_emitted() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_u("A", ElemType::I8);
        let b2 = kb.load_u("B", ElemType::I8);
        let c = kb.bin(VAluOp::SatAdd, a, b2);
        kb.store("C", c);
        let (p, _) = emit(&kb.build().unwrap());
        let text = p.disassemble();
        assert!(text.contains("cmp r2, #255"), "{text}");
        assert!(text.contains("movgt r2, #255"), "{text}");
    }

    #[test]
    fn permuted_load_uses_offset_array() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_perm("A", ElemType::I32, PermKind::Bfly { block: 8 });
        kb.store("B", a);
        let (p, _) = emit(&kb.build().unwrap());
        let text = p.disassemble();
        assert!(text.contains("ldw r11, [__off_1 + r0]"), "{text}");
        assert!(text.contains("add r11, r0, r11"), "{text}");
        assert!(text.contains("ldw r1, [A + r11]"), "{text}");
    }

    #[test]
    fn reduction_uses_loop_carried_register() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        kb.reduce(RedOp::Min, a, "out", ReduceInit::Int(i32::MAX));
        let (p, _) = emit(&kb.build().unwrap());
        let text = p.disassemble();
        // Init comes from a literal pool (i32::MAX exceeds mov range) and
        // accumulates via `min r10, r10, rX`.
        assert!(text.contains("min r10, r10"), "{text}");
        assert!(text.contains("stw [out + r12], r10"), "{text}");
    }
}
