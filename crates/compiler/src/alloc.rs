//! Linear-scan register assignment for kernel values.

use crate::error::CompileError;
use crate::ir::{Kernel, Node, NodeId};

/// Register pools: either separate integer/float files (scalar code) or one
/// shared vector file (native SIMD code).
#[derive(Clone, Debug)]
pub enum PoolSpec {
    /// Integer values from the first pool, float values from the second.
    Split {
        /// Integer register indices available for values.
        int: Vec<u8>,
        /// Float register indices available for values.
        fp: Vec<u8>,
    },
    /// All values share one (vector) register file.
    Shared(Vec<u8>),
}

/// Per-node register assignment (only value-producing nodes get one).
#[derive(Clone, Debug)]
pub struct Assignment {
    /// `reg[node]` is the register index assigned to that node's value.
    pub reg: Vec<Option<u8>>,
}

fn refs(node: &Node) -> Vec<NodeId> {
    match node {
        Node::Bin { a, b, .. } => vec![*a, *b],
        Node::BinImm { a, .. } | Node::Perm { a, .. } | Node::Reduce { a, .. } => vec![*a],
        Node::Store { value, .. } => vec![*value],
        _ => Vec::new(),
    }
}

fn produces_value(node: &Node) -> bool {
    !matches!(node, Node::Store { .. } | Node::Reduce { .. })
}

/// Assigns registers with a last-use linear scan. Nodes in `pinned` keep
/// their pre-assigned register for the whole kernel (hoisted loop-invariant
/// constants) — they never enter or leave the pools.
///
/// # Errors
///
/// Returns [`CompileError::RegisterPressure`] when a pool runs dry — the
/// fission pass's live-range splitting should prevent this for realistic
/// kernels.
pub fn allocate(
    kernel: &Kernel,
    pools: &PoolSpec,
    pinned: &std::collections::BTreeMap<usize, u8>,
) -> Result<Assignment, CompileError> {
    let nodes = kernel.nodes();
    // Last use per node.
    let mut last_use = vec![0usize; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for r in refs(node) {
            last_use[r.0 as usize] = i;
        }
    }

    let mut int_free: Vec<u8>;
    let mut fp_free: Vec<u8>;
    let shared = match pools {
        PoolSpec::Split { int, fp } => {
            int_free = int.clone();
            fp_free = fp.clone();
            int_free.reverse(); // pop from the front of the declared order
            fp_free.reverse();
            false
        }
        PoolSpec::Shared(all) => {
            int_free = all.clone();
            int_free.reverse();
            fp_free = Vec::new();
            true
        }
    };

    let mut reg = vec![None; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        // Free operands whose last use is here (before allocating the
        // destination, enabling in-place reuse). Pinned registers are
        // never returned to a pool. Deduplicate: a node like `mul x, x`
        // must free `x` exactly once or two later values would alias.
        let mut freed = refs(node);
        freed.sort_unstable();
        freed.dedup();
        for r in freed {
            let idx = r.0 as usize;
            if last_use[idx] == i && produces_value(&nodes[idx]) && !pinned.contains_key(&idx) {
                if let Some(assigned) = reg[idx] {
                    let pool = if shared || !kernel.is_float(r) {
                        &mut int_free
                    } else {
                        &mut fp_free
                    };
                    pool.push(assigned);
                }
            }
        }
        if let Some(&pin) = pinned.get(&i) {
            reg[i] = Some(pin);
            continue;
        }
        if produces_value(node) {
            let id = NodeId(i as u32);
            let pool = if shared || !kernel.is_float(id) {
                &mut int_free
            } else {
                &mut fp_free
            };
            let r = pool.pop().ok_or_else(|| CompileError::RegisterPressure {
                kernel: kernel.name().to_string(),
            })?;
            reg[i] = Some(r);
        }
    }
    Ok(Assignment { reg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;
    use liquid_simd_isa::{ElemType, VAluOp};

    #[test]
    fn registers_are_reused_after_last_use() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32); // node 0
        let b = k.bin_imm(VAluOp::Add, a, 1); // node 1, a dies here
        let c = k.bin_imm(VAluOp::Add, b, 1); // node 2, b dies here
        k.store("B", c);
        let kernel = k.build().unwrap();
        let asg = allocate(
            &kernel,
            &PoolSpec::Split {
                int: vec![1, 2],
                fp: vec![],
            },
            &Default::default(),
        )
        .unwrap();
        // With in-place reuse a single register suffices: each value dies
        // exactly where its successor is defined.
        assert_eq!(asg.reg[0], Some(1));
        assert_eq!(asg.reg[1], Some(1));
        assert_eq!(asg.reg[2], Some(1));
    }

    #[test]
    fn pressure_is_reported() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.load("B", ElemType::I32);
        let c = k.bin(VAluOp::Add, a, b);
        // Keep everything live by consuming all three at the end.
        let d = k.bin(VAluOp::Add, c, a);
        let e = k.bin(VAluOp::Add, d, b);
        k.store("C", e);
        let kernel = k.build().unwrap();
        let tight = PoolSpec::Split {
            int: vec![1, 2],
            fp: vec![],
        };
        assert!(matches!(
            allocate(&kernel, &tight, &Default::default()),
            Err(CompileError::RegisterPressure { .. })
        ));
        let enough = PoolSpec::Split {
            int: vec![1, 2, 3],
            fp: vec![],
        };
        assert!(allocate(&kernel, &enough, &Default::default()).is_ok());
    }

    #[test]
    fn shared_pool_mixes_float_and_int() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::F32);
        let b = k.load("B", ElemType::I32);
        let c = k.bin_imm(VAluOp::Add, b, 1);
        k.store("C", c);
        k.store("D", a);
        let kernel = k.build().unwrap();
        let asg = allocate(
            &kernel,
            &PoolSpec::Shared(vec![0, 1, 2]),
            &Default::default(),
        )
        .unwrap();
        let used: Vec<u8> = asg.reg.iter().flatten().copied().collect();
        assert_eq!(used.len(), 3);
    }
}
