//! The Liquid SIMD compiler (paper §3).
//!
//! The paper hand-vectorises benchmark hot loops and then applies fixed
//! rules (Table 1) to re-express the SIMD code in the scalar ISA. This
//! crate makes that process reproducible: hot loops are written once as a
//! **vector-kernel IR** ([`Kernel`]) — a dataflow graph over memory-resident
//! arrays, mirroring the paper's memory-to-memory model (§3.1) — and three
//! code generators consume it:
//!
//! * [`build_liquid`] — the paper's contribution: the **scalarized
//!   representation** (one element per iteration, idioms for saturating
//!   ops, offset arrays for permutations, constant arrays for wide
//!   constants, loop fission at permutation boundaries and for oversized
//!   bodies, function outlining with `bl.v`);
//! * [`build_native`] — native VSIMD vector loops at a given width (the
//!   Figure 6 "built-in ISA support" comparator);
//! * [`build_plain`] — a plain scalar binary with hot loops inlined, no
//!   outlining (the Figure 6 baseline denominator and the code-size
//!   reference).
//!
//! A reference evaluator ([`gold`]) executes kernel semantics directly in
//! Rust; differential tests pin all three binaries (and the dynamically
//! translated microcode) to it.
//!
//! # Example
//!
//! ```
//! use liquid_simd_compiler::{ArrayBuilder, KernelBuilder, Workload, build_liquid};
//! use liquid_simd_isa::{ElemType, VAluOp};
//!
//! // C[i] = A[i] * B[i] over 64 i32 elements.
//! let mut k = KernelBuilder::new("mul", 64);
//! let a = k.load("A", ElemType::I32);
//! let b = k.load("B", ElemType::I32);
//! let c = k.bin(VAluOp::Mul, a, b);
//! k.store("C", c);
//!
//! let data = ArrayBuilder::new()
//!     .int("A", ElemType::I32, (0..64).collect::<Vec<i64>>())
//!     .int("B", ElemType::I32, vec![3; 64])
//!     .zeroed("C", ElemType::I32, 64)
//!     .build();
//! let w = Workload::new("example", vec![k.build().unwrap()], data, 2);
//! let build = build_liquid(&w).unwrap();
//! assert!(build.program.code.len() > 10);
//! assert_eq!(build.outlined.len(), 1); // one outlined function
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod datactx;
mod driver;
mod error;
mod fission;
pub mod gold;
mod ir;
mod native_gen;
mod scalar_gen;

pub use driver::{build_liquid, build_native, build_plain, Build, OutlinedFn, Workload};
pub use error::CompileError;
pub use fission::fission;
pub use ir::{ArrayBuilder, ArrayData, DataEnv, Kernel, KernelBuilder, Node, NodeId, ReduceInit};

/// Default maximum size (instructions) of one outlined scalar function;
/// kernels whose scalarized body would exceed it are fissioned, exactly as
/// the paper splits 172.mgrid / 101.tomcatv loops to fit the 64-entry
/// microcode buffer (§5, Table 5).
pub const MAX_OUTLINED_INSTRS: usize = 60;
