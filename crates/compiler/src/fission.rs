//! Loop fission (paper §3.2 / §3.4).
//!
//! Two forces split a kernel into multiple loops:
//!
//! 1. **Permutations.** The scalar representation only expresses element
//!    reordering *at memory boundaries* (offset arrays feeding loads and
//!    stores). A mid-dataflow [`Node::Perm`] is first folded into an
//!    adjacent load/store when possible; otherwise the kernel is split: the
//!    permuted value is stored to a compiler temporary with the inverse
//!    permutation, and a second loop reloads it contiguously — exactly the
//!    `tmp0`/`tmp1` loops of the paper's FFT example (Figure 4B).
//! 2. **Size.** The microcode buffer holds 64 instructions; outlined
//!    functions whose scalar body would exceed [`crate::MAX_OUTLINED_INSTRS`]
//!    are split, with live values crossing the cut through temporaries
//!    (the paper does this to 172.mgrid and 101.tomcatv).

use std::collections::BTreeMap;

use liquid_simd_isa::{ElemType, VAluOp};

use crate::error::CompileError;
use crate::ir::{Kernel, Node, NodeId};

/// Result of fissioning one kernel.
#[derive(Clone, Debug)]
pub struct FissionResult {
    /// The sub-kernels, in execution order.
    pub kernels: Vec<Kernel>,
    /// Compiler temporaries to allocate: `(name, elem, len)`.
    pub temps: Vec<(String, ElemType, u32)>,
}

/// Estimated scalar instructions for one node.
fn node_cost(node: &Node) -> usize {
    match node {
        Node::Load { perm, .. } => 1 + if perm.is_some() { 2 } else { 0 },
        Node::ConstVecI { .. } | Node::ConstVecF { .. } => 1,
        Node::Bin { op, .. } | Node::BinImm { op, .. } => match op {
            // Saturating ops expand to the 5-instruction full-clamp idiom.
            VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub => 5,
            _ => 1,
        },
        Node::Perm { .. } => 3,
        Node::Reduce { .. } => 1,
        Node::Store { perm, .. } => 1 + if perm.is_some() { 2 } else { 0 },
    }
}

/// Estimated scalar instructions for a whole (sub-)kernel, including the
/// loop scaffolding and epilogue.
#[must_use]
pub(crate) fn estimate_instrs(nodes: &[Node]) -> usize {
    let body: usize = nodes.iter().map(node_cost).sum();
    let reduces = nodes
        .iter()
        .filter(|n| matches!(n, Node::Reduce { .. }))
        .count();
    // mov r0,#0 + accumulator inits + loop control (add/cmp/blt)
    // + epilogue (mov index + store per reduction) + ret.
    body + 1 + reduces + 3 + if reduces > 0 { 1 + reduces } else { 0 } + 1
}

/// Fissions a kernel so that every sub-kernel is free of mid-dataflow
/// permutations and fits `max_instrs` scalar instructions.
///
/// # Errors
///
/// Returns [`CompileError`] if a single node cluster cannot fit the budget
/// or the rewritten kernels fail validation.
pub fn fission(kernel: &Kernel, max_instrs: usize) -> Result<FissionResult, CompileError> {
    let mut temps: Vec<(String, ElemType, u32)> = Vec::new();
    let folded = fold_perms(kernel)?;
    let mut queue: Vec<Kernel> = vec![folded];
    let mut out: Vec<Kernel> = Vec::new();
    let mut piece = 0usize;
    // Each split removes one perm or shrinks the node list; bound the work.
    let mut guard = 0;
    while let Some(k) = queue.pop() {
        guard += 1;
        if guard > 1000 {
            return Err(CompileError::Invalid {
                kernel: kernel.name().to_string(),
                reason: "fission failed to converge".to_string(),
            });
        }
        let cut = find_cut(&k, max_instrs);
        match cut {
            None => {
                out.push(k);
            }
            Some(p) => {
                let (a, b) = split_at(&k, p, &mut temps, piece)?;
                piece += 1;
                // Process `a` next (it is perm-free below the cut by
                // construction of `find_cut`), then `b`.
                queue.push(b);
                queue.push(a);
            }
        }
    }
    // `queue.pop()` processed depth-first with `a` on top, so `out` is in
    // execution order already.
    let kernels: Vec<Kernel> = out
        .into_iter()
        .enumerate()
        .map(|(i, k)| {
            let name = if i == 0 && piece == 0 {
                k.name().to_string()
            } else {
                format!("{}__{}", kernel.name(), i)
            };
            k.with_name(name)
        })
        .collect();
    Ok(FissionResult { kernels, temps })
}

/// Folds `Perm` nodes into adjacent loads/stores where legal: a `Perm`
/// whose operand is an unpermuted single-use `Load` becomes a permuted
/// load; a `Store` of a single-use `Perm` becomes a permuted store.
fn fold_perms(kernel: &Kernel) -> Result<Kernel, CompileError> {
    let nodes = kernel.nodes();
    let mut uses: BTreeMap<u32, usize> = BTreeMap::new();
    for node in nodes {
        for r in node_refs(node) {
            *uses.entry(r.0).or_insert(0) += 1;
        }
    }
    let mut rewritten: Vec<Node> = Vec::with_capacity(nodes.len());
    // Map original id -> new id (identity unless nodes were dropped).
    let mut remap: Vec<u32> = Vec::with_capacity(nodes.len());
    // Ids of perm nodes that were folded into their load operand.
    for (i, node) in nodes.iter().enumerate() {
        let mut node = node.clone();
        // Fold Store(Perm(x)) -> Store{x, perm}. Only if the perm node was
        // not itself already folded into its load (check the *rewritten*
        // node, not the original).
        if let Node::Store {
            array,
            value,
            offset,
            wide,
            perm: None,
        } = &node
        {
            if let Node::Perm { kind, a } = &rewritten[value.0 as usize] {
                if uses.get(&value.0) == Some(&1) {
                    node = Node::Store {
                        array: array.clone(),
                        value: *a,
                        offset: *offset,
                        wide: *wide,
                        perm: Some(kind.inverse()),
                    };
                }
            }
        }
        // Fold Perm(Load) -> permuted Load (keep the perm node's slot so
        // later references stay valid; the load's old slot becomes dead).
        if let Node::Perm { kind, a } = &node {
            if let Node::Load {
                array,
                elem,
                signed,
                offset,
                wide,
                perm: None,
            } = &nodes[a.0 as usize]
            {
                if uses.get(&a.0) == Some(&1) {
                    node = Node::Load {
                        array: array.clone(),
                        elem: *elem,
                        signed: *signed,
                        offset: *offset,
                        wide: *wide,
                        perm: Some(*kind),
                    };
                }
            }
        }
        remap.push(i as u32);
        rewritten.push(node);
    }
    // Remap references (identity here; dead loads are left in place — they
    // cost one instruction and keep the code simple; the dead-node sweep
    // below removes them).
    let live = sweep_dead(&rewritten);
    Kernel::from_parts(kernel.name().to_string(), kernel.trip(), live)
}

/// Removes value nodes that nothing references (e.g. loads orphaned by
/// perm folding), remapping ids.
fn sweep_dead(nodes: &[Node]) -> Vec<Node> {
    let mut used = vec![false; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        if matches!(node, Node::Store { .. } | Node::Reduce { .. }) {
            used[i] = true;
        }
        for r in node_refs(node) {
            used[r.0 as usize] = true;
        }
    }
    // Propagate backwards: refs of used nodes are used.
    for i in (0..nodes.len()).rev() {
        if used[i] {
            for r in node_refs(&nodes[i]) {
                used[r.0 as usize] = true;
            }
        }
    }
    let mut remap = vec![0u32; nodes.len()];
    let mut out = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if used[i] {
            remap[i] = out.len() as u32;
            out.push(remap_node(node, &remap));
        }
    }
    out
}

fn node_refs(node: &Node) -> Vec<NodeId> {
    match node {
        Node::Bin { a, b, .. } => vec![*a, *b],
        Node::BinImm { a, .. } | Node::Perm { a, .. } | Node::Reduce { a, .. } => vec![*a],
        Node::Store { value, .. } => vec![*value],
        _ => Vec::new(),
    }
}

fn remap_node(node: &Node, remap: &[u32]) -> Node {
    let m = |id: NodeId| NodeId(remap[id.0 as usize]);
    match node.clone() {
        Node::Bin { op, a, b } => Node::Bin {
            op,
            a: m(a),
            b: m(b),
        },
        Node::BinImm { op, a, imm } => Node::BinImm { op, a: m(a), imm },
        Node::Perm { kind, a } => Node::Perm { kind, a: m(a) },
        Node::Reduce { op, a, out, init } => Node::Reduce {
            op,
            a: m(a),
            out,
            init,
        },
        Node::Store {
            array,
            value,
            offset,
            wide,
            perm,
        } => Node::Store {
            array,
            value: m(value),
            offset,
            wide,
            perm,
        },
        other => other,
    }
}

/// Finds a cut point: the index of the first surviving mid-dataflow perm,
/// or the point where the size estimate exceeds the budget. `None` means
/// the kernel is fine as-is.
fn find_cut(kernel: &Kernel, max_instrs: usize) -> Option<usize> {
    let nodes = kernel.nodes();
    // First remaining perm: cut exactly there.
    if let Some(p) = nodes.iter().position(|n| matches!(n, Node::Perm { .. })) {
        return Some(p);
    }
    if estimate_instrs(nodes) <= max_instrs {
        return None;
    }
    // Greedy size cut: the largest prefix whose estimate (plus slack for
    // crossing stores) fits. Never cut at 0; never at the very end.
    let slack = 6;
    let mut best = 1;
    for p in 1..nodes.len() {
        if estimate_instrs(&nodes[..p]) + slack <= max_instrs {
            best = p;
        } else {
            break;
        }
    }
    Some(best.min(nodes.len() - 1))
}

/// Splits a kernel before node `p`. If node `p` is a `Perm`, the cut
/// stores its operand with the inverse permutation and the second kernel
/// reloads it contiguously; all other live values crossing the cut go
/// through plain temporaries.
fn split_at(
    kernel: &Kernel,
    p: usize,
    temps: &mut Vec<(String, ElemType, u32)>,
    piece: usize,
) -> Result<(Kernel, Kernel), CompileError> {
    let nodes = kernel.nodes();
    let trip = kernel.trip();
    let is_perm_cut = matches!(nodes[p], Node::Perm { .. });
    let tail_start = if is_perm_cut { p + 1 } else { p };

    // Which earlier values does the tail (and the perm node itself) need?
    let mut crossing: Vec<u32> = Vec::new();
    for node in &nodes[tail_start..] {
        for r in node_refs(node) {
            // The perm node's own slot crosses through its dedicated
            // permuted temporary, not a plain one.
            let is_perm_slot = is_perm_cut && r.0 as usize == p;
            if (r.0 as usize) < tail_start && !is_perm_slot && !crossing.contains(&r.0) {
                crossing.push(r.0);
            }
        }
    }
    let perm_operand = if let Node::Perm { a, .. } = nodes[p] {
        Some(a)
    } else {
        None
    };

    let mut head: Vec<Node> = nodes[..p].to_vec();
    let mut tail: Vec<Node> = Vec::new();
    // Map original id -> id within the tail kernel.
    let mut tail_ids: BTreeMap<u32, u32> = BTreeMap::new();

    let temp_name = |temps: &mut Vec<(String, ElemType, u32)>, elem: ElemType| -> String {
        let name = format!("__t_{}_{}_{}", kernel.name(), piece, temps.len());
        // Cross-cut spills are `wide` (full 32-bit lane) stores, so the
        // backing array must be word-sized per element — reserving at the
        // semantic element width would let `stw` overrun into whatever the
        // program builder placed next.
        let storage = if elem.is_float() {
            ElemType::F32
        } else {
            ElemType::I32
        };
        temps.push((name.clone(), storage, trip));
        name
    };

    // The permuted value crosses through its own temp, permuted on store.
    if let (true, Some(Node::Perm { kind, a })) = (is_perm_cut, nodes.get(p)) {
        let elem = kernel.elem_of(*a).expect("perm of value");
        let signed = kernel.is_signed(*a);
        let name = temp_name(temps, elem);
        head.push(Node::Store {
            array: name.clone(),
            value: *a,
            offset: 0,
            wide: true,
            perm: Some(kind.inverse()),
        });
        tail.push(Node::Load {
            array: name,
            elem,
            signed,
            offset: 0,
            wide: true,
            perm: None,
        });
        tail_ids.insert(p as u32, 0);
    }
    let _ = perm_operand;

    // Other crossing values: plain store/reload.
    crossing.sort_unstable();
    for id in crossing {
        let elem = kernel.elem_of(NodeId(id)).expect("crossing value");
        let signed = kernel.is_signed(NodeId(id));
        let name = temp_name(temps, elem);
        head.push(Node::Store {
            array: name.clone(),
            value: NodeId(id),
            offset: 0,
            wide: true,
            perm: None,
        });
        let new_id = tail.len() as u32;
        tail.push(Node::Load {
            array: name,
            elem,
            signed,
            offset: 0,
            wide: true,
            perm: None,
        });
        tail_ids.insert(id, new_id);
    }

    // Rebuild the tail with remapped references.
    for (i, node) in nodes[tail_start..].iter().enumerate() {
        let orig = (tail_start + i) as u32;
        let m = |id: NodeId| -> NodeId {
            if let Some(&t) = tail_ids.get(&id.0) {
                NodeId(t)
            } else {
                // Defined within the tail itself.
                let offset = id.0 - tail_start as u32;
                NodeId(tail_offsets_lookup(&tail_ids, tail_start as u32, offset))
            }
        };
        let new = match node.clone() {
            Node::Bin { op, a, b } => Node::Bin {
                op,
                a: m(a),
                b: m(b),
            },
            Node::BinImm { op, a, imm } => Node::BinImm { op, a: m(a), imm },
            Node::Perm { kind, a } => Node::Perm { kind, a: m(a) },
            Node::Reduce { op, a, out, init } => Node::Reduce {
                op,
                a: m(a),
                out,
                init,
            },
            Node::Store {
                array,
                value,
                offset,
                wide,
                perm,
            } => Node::Store {
                array,
                value: m(value),
                offset,
                wide,
                perm,
            },
            other => other,
        };
        tail_ids.insert(orig, tail.len() as u32);
        tail.push(new);
    }

    let head_kernel = Kernel::from_parts(
        format!("{}_h{}", kernel.name(), piece),
        trip,
        sweep_dead(&head),
    )?;
    let tail_kernel = Kernel::from_parts(
        format!("{}_t{}", kernel.name(), piece),
        trip,
        sweep_dead(&tail),
    )?;
    Ok((head_kernel, tail_kernel))
}

/// Resolves a tail-internal reference: nodes defined inside the tail were
/// appended in order, so their new id was recorded in `tail_ids` as they
/// were pushed.
fn tail_offsets_lookup(tail_ids: &BTreeMap<u32, u32>, tail_start: u32, offset: u32) -> u32 {
    *tail_ids
        .get(&(tail_start + offset))
        .expect("forward reference resolved by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;
    use liquid_simd_isa::PermKind;

    #[test]
    fn perm_folds_into_load() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::F32);
        let p = k.perm(PermKind::Bfly { block: 8 }, a);
        k.store("B", p);
        let r = fission(&k.build().unwrap(), 60).unwrap();
        assert_eq!(r.kernels.len(), 1, "folded, no fission needed");
        assert!(r.temps.is_empty());
        assert!(matches!(
            r.kernels[0].nodes()[0],
            Node::Load { perm: Some(_), .. }
        ));
    }

    #[test]
    fn perm_folds_into_store() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.bin_imm(VAluOp::Add, a, 1);
        let p = k.perm(PermKind::Rot { block: 4, amt: 1 }, b);
        k.store("B", p);
        let r = fission(&k.build().unwrap(), 60).unwrap();
        assert_eq!(r.kernels.len(), 1);
        let store = r.kernels[0].nodes().last().unwrap();
        assert!(matches!(
            store,
            Node::Store {
                perm: Some(PermKind::Rot { block: 4, amt: 3 }),
                ..
            }
        ));
    }

    #[test]
    fn unfoldable_perm_forces_fission() {
        // Perm feeds further computation, so it cannot fold into a store.
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.bin_imm(VAluOp::Mul, a, 3);
        let p = k.perm(PermKind::Bfly { block: 8 }, b);
        let c = k.bin(VAluOp::Add, p, a); // also keeps `a` live across
        k.store("B", c);
        let r = fission(&k.build().unwrap(), 60).unwrap();
        assert_eq!(r.kernels.len(), 2, "one loop per side of the perm");
        // Two temps: the permuted value and the live `a`.
        assert_eq!(r.temps.len(), 2);
        // First loop ends with permuted store(s); second starts with loads.
        let k0 = &r.kernels[0];
        assert!(k0
            .nodes()
            .iter()
            .any(|n| matches!(n, Node::Store { perm: Some(_), .. })));
        let k1 = &r.kernels[1];
        assert!(matches!(k1.nodes()[0], Node::Load { .. }));
    }

    #[test]
    fn narrow_element_temps_are_word_sized() {
        // Cross-cut spills use `wide` (full 32-bit) stores, so the temp
        // arrays must be registered at word width even for i8 kernels —
        // element-width temps let the spill stores overrun into the next
        // data symbol (historically the `__rep` driver counter, which made
        // the program non-terminating).
        let mut k = KernelBuilder::new("k", 32);
        let a = k.load("A", ElemType::I8);
        let b = k.bin_imm(VAluOp::SatAdd, a, 9);
        let p = k.perm(PermKind::Bfly { block: 4 }, b);
        let c = k.bin(VAluOp::Min, p, a); // keeps `a` live across the cut
        k.store("B", c);
        let r = fission(&k.build().unwrap(), 60).unwrap();
        assert_eq!(r.temps.len(), 2);
        for (name, elem, len) in &r.temps {
            assert_eq!(
                *elem,
                ElemType::I32,
                "{name}: spills are wide, storage must be word-sized"
            );
            assert_eq!(*len, 32);
        }
    }

    #[test]
    fn oversized_kernel_splits_by_size() {
        let mut k = KernelBuilder::new("big", 16);
        let mut v = k.load("A", ElemType::I32);
        for i in 0..80 {
            v = k.bin_imm(VAluOp::Add, v, (i % 7) + 1);
        }
        k.store("B", v);
        let r = fission(&k.build().unwrap(), 60).unwrap();
        assert!(r.kernels.len() >= 2, "split into {}", r.kernels.len());
        for sub in &r.kernels {
            assert!(
                estimate_instrs(sub.nodes()) <= 60,
                "{} estimated at {}",
                sub.name(),
                estimate_instrs(sub.nodes())
            );
        }
    }

    #[test]
    fn small_kernel_untouched() {
        let mut k = KernelBuilder::new("small", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.bin_imm(VAluOp::Add, a, 1);
        k.store("B", b);
        let kernel = k.build().unwrap();
        let r = fission(&kernel, 60).unwrap();
        assert_eq!(r.kernels.len(), 1);
        assert_eq!(r.kernels[0], kernel);
    }
}
