//! The vector-kernel IR: a dataflow graph over memory-resident arrays.
//!
//! Kernels model exactly the loops the paper vectorises: a
//! memory-to-memory pipeline (loads → element-wise ops / permutations →
//! stores, plus reductions into scalars), executed for `trip` elements.
//! `trip` must be a multiple of [`MAX_VECTOR_WIDTH`] — the paper's §3.1
//! alignment rule ("the application must be compiled to some maximum
//! vectorizable length").

use std::collections::BTreeMap;

use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp, MAX_VECTOR_WIDTH};

use crate::error::CompileError;

/// Reference to a value-producing node within one kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Initial value of a reduction accumulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReduceInit {
    /// Integer accumulator initial value.
    Int(i32),
    /// Floating-point accumulator initial value.
    F32(f32),
}

/// One dataflow node.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Load element `i` (optionally permuted: element `src_kind(i)` of each
    /// block) of an array.
    Load {
        /// Source array name.
        array: String,
        /// Element type.
        elem: ElemType,
        /// Sign-extend narrow elements.
        signed: bool,
        /// Element offset added to the induction index (stencil neighbours,
        /// filter taps): the access reads `array[i + offset]`. The code
        /// generators realise this with an alias symbol so the scalar
        /// representation stays a plain base+induction access.
        offset: u32,
        /// Full-width (32-bit) storage access: the lane is reloaded exactly
        /// as stored, while `elem` keeps its semantic meaning for
        /// downstream ops. Only fission-inserted temporaries use this —
        /// lanes are 32-bit, so spilling them at element width would
        /// truncate.
        wide: bool,
        /// Optional blocked permutation applied while loading.
        perm: Option<PermKind>,
    },
    /// A periodic integer constant vector (lane `i` sees
    /// `pattern[i mod len]`) — paper Table 1 category 3.
    ConstVecI {
        /// Element type.
        elem: ElemType,
        /// The repeating pattern (power-of-two length).
        pattern: Vec<i64>,
    },
    /// A periodic `f32` constant vector.
    ConstVecF {
        /// The repeating pattern (power-of-two length).
        pattern: Vec<f32>,
    },
    /// Element-wise binary operation.
    Bin {
        /// Operation.
        op: VAluOp,
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// Element-wise operation against a small immediate (must fit the
    /// vector-immediate field, ±255) — paper Table 1 category 2.
    BinImm {
        /// Operation.
        op: VAluOp,
        /// Operand.
        a: NodeId,
        /// Immediate.
        imm: i32,
    },
    /// Mid-dataflow blocked permutation. The Liquid scalar representation
    /// cannot express this directly — fission moves it to a memory boundary
    /// (paper §3.2 and the Figure 4 example).
    Perm {
        /// Permutation kind.
        kind: PermKind,
        /// Operand.
        a: NodeId,
    },
    /// Reduce all elements into a scalar, written to `out[0]` after the
    /// loop — paper Table 1 category 4.
    Reduce {
        /// Reduction operation.
        op: RedOp,
        /// Operand.
        a: NodeId,
        /// Output array (element 0 receives the result).
        out: String,
        /// Accumulator initial value.
        init: ReduceInit,
    },
    /// Store element `i` (optionally permuted on the way out) of a value.
    Store {
        /// Destination array name.
        array: String,
        /// Value to store.
        value: NodeId,
        /// Element offset added to the induction index (`array[i + offset]`).
        offset: u32,
        /// Full-width (32-bit) storage access (see `Load::wide`).
        wide: bool,
        /// Optional blocked permutation applied while storing.
        perm: Option<PermKind>,
    },
}

/// A validated vector kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    name: String,
    trip: u32,
    nodes: Vec<Node>,
}

impl Kernel {
    /// The kernel's name (used for outlined-function labels).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element trip count.
    #[must_use]
    pub fn trip(&self) -> u32 {
        self.trip
    }

    /// The dataflow nodes, in topological (construction) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The element type produced by a node (`None` for stores/reduces).
    #[must_use]
    pub fn elem_of(&self, id: NodeId) -> Option<ElemType> {
        match &self.nodes[id.0 as usize] {
            Node::Load { elem, .. } | Node::ConstVecI { elem, .. } => Some(*elem),
            Node::ConstVecF { .. } => Some(ElemType::F32),
            Node::Bin { a, .. } | Node::BinImm { a, .. } | Node::Perm { a, .. } => self.elem_of(*a),
            Node::Reduce { .. } | Node::Store { .. } => None,
        }
    }

    /// Whether a node's value is floating point.
    #[must_use]
    pub fn is_float(&self, id: NodeId) -> bool {
        self.elem_of(id) == Some(ElemType::F32)
    }

    /// Whether a node's lanes carry sign-extended values (drives the
    /// signedness of temporary reloads inserted by fission).
    #[must_use]
    pub fn is_signed(&self, id: NodeId) -> bool {
        match &self.nodes[id.0 as usize] {
            Node::Load { signed, .. } => *signed,
            Node::ConstVecI { .. } | Node::ConstVecF { .. } => true,
            Node::Bin { a, .. } | Node::BinImm { a, .. } | Node::Perm { a, .. } => {
                self.is_signed(*a)
            }
            Node::Reduce { .. } | Node::Store { .. } => true,
        }
    }

    /// Array names loaded by this kernel.
    #[must_use]
    pub fn inputs(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Load { array, .. } => Some(array.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Array names written by this kernel (stores and reduction outputs).
    #[must_use]
    pub fn outputs(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Store { array, .. } => Some(array.as_str()),
                Node::Reduce { out, .. } => Some(out.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Per node: `true` if it is a *uniform* constant vector (pattern
    /// length 1) whose every use is the second operand of a binary op, or
    /// the first operand of a commutative one. Such constants are
    /// loop-invariant scalars: the code generators hoist them into a scalar
    /// register before the loop and use vector-by-scalar broadcast forms
    /// inside it.
    #[must_use]
    pub fn hoistable_consts(&self) -> Vec<bool> {
        let mut hoist: Vec<bool> = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::ConstVecI { pattern, .. } => pattern.len() == 1,
                Node::ConstVecF { pattern } => pattern.len() == 1,
                _ => false,
            })
            .collect();
        for node in &self.nodes {
            match node {
                Node::Bin { op, a, b } => {
                    // `b` position is always expressible as a broadcast;
                    // `a` position only commutes into one.
                    if !op.is_commutative() {
                        hoist[a.0 as usize] = false;
                    }
                    let _ = b;
                }
                Node::BinImm { a, .. } | Node::Perm { a, .. } | Node::Reduce { a, .. } => {
                    hoist[a.0 as usize] = false;
                }
                Node::Store { value, .. } => hoist[value.0 as usize] = false,
                _ => {}
            }
        }
        // Two hoisted constants feeding the same op would leave no vector
        // operand; demote the first.
        for node in &self.nodes {
            if let Node::Bin { a, b, .. } = node {
                if hoist[a.0 as usize] && hoist[b.0 as usize] {
                    hoist[a.0 as usize] = false;
                }
            }
        }
        hoist
    }

    /// The single scalar value of a hoistable uniform constant, as the
    /// 32-bit register image the scalar code would hold (sign-extended for
    /// integers, IEEE-754 bits for floats).
    #[must_use]
    pub fn uniform_const_bits(&self, id: NodeId) -> Option<u32> {
        match &self.nodes[id.0 as usize] {
            Node::ConstVecI { elem, pattern } if pattern.len() == 1 => {
                let canon = DataEnv::canon(*elem, pattern[0]);
                let raw = canon as u64 as u32;
                Some(match elem {
                    ElemType::I8 => (raw as u8 as i8) as i32 as u32,
                    ElemType::I16 => (raw as u16 as i16) as i32 as u32,
                    _ => raw,
                })
            }
            Node::ConstVecF { pattern } if pattern.len() == 1 => Some(pattern[0].to_bits()),
            _ => None,
        }
    }

    /// Renames the kernel (used by fission to suffix sub-kernels).
    pub(crate) fn with_name(mut self, name: String) -> Kernel {
        self.name = name;
        self
    }

    /// Builds a kernel directly from parts, re-validating.
    pub(crate) fn from_parts(
        name: String,
        trip: u32,
        nodes: Vec<Node>,
    ) -> Result<Kernel, CompileError> {
        let k = Kernel { name, trip, nodes };
        k.validate()?;
        Ok(k)
    }

    fn invalid(&self, reason: impl Into<String>) -> CompileError {
        CompileError::Invalid {
            kernel: self.name.clone(),
            reason: reason.into(),
        }
    }

    /// Full structural validation.
    pub(crate) fn validate(&self) -> Result<(), CompileError> {
        if self.trip == 0 || !(self.trip as usize).is_multiple_of(MAX_VECTOR_WIDTH) {
            return Err(self.invalid(format!(
                "trip {} must be a positive multiple of the maximum vector width {}",
                self.trip, MAX_VECTOR_WIDTH
            )));
        }
        let mut has_effect = false;
        for (i, node) in self.nodes.iter().enumerate() {
            let check_ref = |id: NodeId| -> Result<(), CompileError> {
                if id.0 as usize >= i {
                    return Err(self.invalid(format!("node {i} references later node {}", id.0)));
                }
                match self.nodes[id.0 as usize] {
                    Node::Store { .. } | Node::Reduce { .. } => {
                        Err(self.invalid(format!("node {i} uses a non-value node {}", id.0)))
                    }
                    _ => Ok(()),
                }
            };
            let check_perm = |kind: PermKind| -> Result<(), CompileError> {
                kind.validate().map_err(|e| self.invalid(e.to_string()))?;
                if u32::from(kind.block()) > self.trip
                    || !self.trip.is_multiple_of(u32::from(kind.block()))
                {
                    return Err(self.invalid(format!(
                        "permutation block {} vs trip {}",
                        kind.block(),
                        self.trip
                    )));
                }
                if usize::from(kind.block()) > MAX_VECTOR_WIDTH {
                    return Err(self.invalid("permutation block exceeds maximum vector width"));
                }
                Ok(())
            };
            match node {
                Node::Load { perm, .. } => {
                    if let Some(k) = perm {
                        check_perm(*k)?;
                    }
                }
                Node::ConstVecI { pattern, .. } => {
                    if pattern.is_empty()
                        || !pattern.len().is_power_of_two()
                        || pattern.len() > MAX_VECTOR_WIDTH
                    {
                        return Err(self.invalid(
                            "constant pattern length must be a power of two <= max width",
                        ));
                    }
                }
                Node::ConstVecF { pattern } => {
                    if pattern.is_empty()
                        || !pattern.len().is_power_of_two()
                        || pattern.len() > MAX_VECTOR_WIDTH
                    {
                        return Err(self.invalid(
                            "constant pattern length must be a power of two <= max width",
                        ));
                    }
                }
                Node::Bin { op, a, b } => {
                    check_ref(*a)?;
                    check_ref(*b)?;
                    let ea = self.elem_of(*a).expect("value node");
                    let eb = self.elem_of(*b).expect("value node");
                    if ea.is_float() != eb.is_float() {
                        return Err(self.invalid(format!("node {i} mixes float and int operands")));
                    }
                    if !op.valid_for(ea) {
                        return Err(self.invalid(format!("node {i}: {op} invalid for {ea}")));
                    }
                }
                Node::BinImm { op, a, imm } => {
                    check_ref(*a)?;
                    let ea = self.elem_of(*a).expect("value node");
                    if ea.is_float() {
                        return Err(self.invalid(format!(
                            "node {i}: immediate ops need integer operands (use ConstVecF)"
                        )));
                    }
                    if !op.valid_for(ea) {
                        return Err(self.invalid(format!("node {i}: {op} invalid for {ea}")));
                    }
                    if !(-256..=255).contains(imm) {
                        return Err(self.invalid(format!(
                            "node {i}: immediate {imm} outside vector-immediate range (use ConstVecI)"
                        )));
                    }
                }
                Node::Perm { kind, a } => {
                    check_ref(*a)?;
                    check_perm(*kind)?;
                }
                Node::Reduce { op, a, .. } => {
                    check_ref(*a)?;
                    let _ = op;
                    has_effect = true;
                }
                Node::Store { value, perm, .. } => {
                    check_ref(*value)?;
                    if let Some(k) = perm {
                        check_perm(*k)?;
                    }
                    has_effect = true;
                }
            }
        }
        if !has_effect {
            return Err(self.invalid("kernel has no store or reduction"));
        }
        self.validate_memory_order()
    }

    /// The scalar loop executes all nodes per element before moving to the
    /// next element, while gold evaluation is whole-vector SSA. The two
    /// agree only when no iteration can observe another iteration's write:
    /// each array is stored at most once, loads of an array precede its
    /// store, and an array that is both loaded and stored is accessed
    /// without permutation on either side.
    fn validate_memory_order(&self) -> Result<(), CompileError> {
        use std::collections::BTreeMap;
        let mut store_at: BTreeMap<&str, usize> = BTreeMap::new();
        let mut store_perm: BTreeMap<&str, bool> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Store { array, perm, .. } = node {
                if store_at.insert(array.as_str(), i).is_some() {
                    return Err(self.invalid(format!("array `{array}` stored twice")));
                }
                store_perm.insert(array.as_str(), perm.is_some());
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Load { array, perm, .. } = node {
                if let Some(&s) = store_at.get(array.as_str()) {
                    if i > s {
                        return Err(
                            self.invalid(format!("array `{array}` loaded after being stored"))
                        );
                    }
                    if perm.is_some() || store_perm[array.as_str()] {
                        return Err(self.invalid(format!(
                            "array `{array}` is updated in place with a permutation; \
                             use a separate output array"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Incremental kernel construction.
#[derive(Clone, Debug)]
pub struct KernelBuilder {
    name: String,
    trip: u32,
    nodes: Vec<Node>,
}

impl KernelBuilder {
    /// Starts a kernel over `trip` elements.
    #[must_use]
    pub fn new(name: &str, trip: u32) -> KernelBuilder {
        KernelBuilder {
            name: name.to_string(),
            trip,
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Loads an array (sign-extending).
    pub fn load(&mut self, array: &str, elem: ElemType) -> NodeId {
        self.load_at(array, elem, 0)
    }

    /// Loads `array[i + offset]` (sign-extending) — stencil neighbours and
    /// filter taps.
    pub fn load_at(&mut self, array: &str, elem: ElemType, offset: u32) -> NodeId {
        self.push(Node::Load {
            array: array.to_string(),
            elem,
            signed: true,
            offset,
            wide: false,
            perm: None,
        })
    }

    /// Loads an array zero-extending narrow elements (pixel data).
    pub fn load_u(&mut self, array: &str, elem: ElemType) -> NodeId {
        self.load_u_at(array, elem, 0)
    }

    /// Loads `array[i + offset]` zero-extending narrow elements.
    pub fn load_u_at(&mut self, array: &str, elem: ElemType, offset: u32) -> NodeId {
        self.push(Node::Load {
            array: array.to_string(),
            elem,
            signed: false,
            offset,
            wide: false,
            perm: None,
        })
    }

    /// Loads an array through a blocked permutation.
    pub fn load_perm(&mut self, array: &str, elem: ElemType, kind: PermKind) -> NodeId {
        self.push(Node::Load {
            array: array.to_string(),
            elem,
            signed: true,
            offset: 0,
            wide: false,
            perm: Some(kind),
        })
    }

    /// A periodic integer constant vector.
    pub fn constv(&mut self, elem: ElemType, pattern: impl Into<Vec<i64>>) -> NodeId {
        self.push(Node::ConstVecI {
            elem,
            pattern: pattern.into(),
        })
    }

    /// A periodic `f32` constant vector.
    pub fn constf(&mut self, pattern: impl Into<Vec<f32>>) -> NodeId {
        self.push(Node::ConstVecF {
            pattern: pattern.into(),
        })
    }

    /// An element-wise binary op.
    pub fn bin(&mut self, op: VAluOp, a: NodeId, b: NodeId) -> NodeId {
        self.push(Node::Bin { op, a, b })
    }

    /// An element-wise op against an immediate.
    pub fn bin_imm(&mut self, op: VAluOp, a: NodeId, imm: i32) -> NodeId {
        self.push(Node::BinImm { op, a, imm })
    }

    /// A register permutation (fissioned to memory in the scalar form).
    pub fn perm(&mut self, kind: PermKind, a: NodeId) -> NodeId {
        self.push(Node::Perm { kind, a })
    }

    /// A reduction into `out[0]`.
    pub fn reduce(&mut self, op: RedOp, a: NodeId, out: &str, init: ReduceInit) {
        self.push(Node::Reduce {
            op,
            a,
            out: out.to_string(),
            init,
        });
    }

    /// Stores a value to an array.
    pub fn store(&mut self, array: &str, value: NodeId) {
        self.store_at(array, value, 0);
    }

    /// Stores a value to `array[i + offset]`.
    pub fn store_at(&mut self, array: &str, value: NodeId, offset: u32) {
        self.push(Node::Store {
            array: array.to_string(),
            value,
            offset,
            wide: false,
            perm: None,
        });
    }

    /// Stores a value through a blocked permutation.
    pub fn store_perm(&mut self, array: &str, value: NodeId, kind: PermKind) {
        self.push(Node::Store {
            array: array.to_string(),
            value,
            offset: 0,
            wide: false,
            perm: Some(kind),
        });
    }

    /// Validates and produces the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Invalid`] describing the first structural
    /// problem.
    pub fn build(self) -> Result<Kernel, CompileError> {
        let k = Kernel {
            name: self.name,
            trip: self.trip,
            nodes: self.nodes,
        };
        k.validate()?;
        Ok(k)
    }
}

// ---------------------------------------------------------------------------
// Data environment
// ---------------------------------------------------------------------------

/// Contents of one array. Integer arrays store canonical *bit patterns* in
/// `[0, 2^bits)` so that gold evaluation and simulated memory agree exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrayData {
    /// Integer elements (canonical unsigned bit patterns).
    Int(Vec<i64>),
    /// `f32` elements.
    F32(Vec<f32>),
}

impl ArrayData {
    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Int(v) => v.len(),
            ArrayData::F32(v) => v.len(),
        }
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Named arrays with element types — the memory image kernels operate on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DataEnv {
    /// Arrays by name.
    pub arrays: BTreeMap<String, (ElemType, ArrayData)>,
}

impl DataEnv {
    /// Looks up an array.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&(ElemType, ArrayData)> {
        self.arrays.get(name)
    }

    /// Masks a value to an element type's canonical bit pattern.
    #[must_use]
    pub fn canon(elem: ElemType, value: i64) -> i64 {
        let bits = elem.bytes() * 8;
        if bits >= 64 {
            value
        } else {
            value & ((1i64 << bits) - 1)
        }
    }
}

/// Fluent construction of a [`DataEnv`].
#[derive(Clone, Debug, Default)]
pub struct ArrayBuilder {
    env: DataEnv,
}

impl ArrayBuilder {
    /// Starts an empty environment.
    #[must_use]
    pub fn new() -> ArrayBuilder {
        ArrayBuilder::default()
    }

    /// Adds an integer array (values canonicalised to the element width).
    #[must_use]
    pub fn int(mut self, name: &str, elem: ElemType, values: impl Into<Vec<i64>>) -> ArrayBuilder {
        assert!(!elem.is_float(), "use .f32() for float arrays");
        let values: Vec<i64> = values
            .into()
            .into_iter()
            .map(|v| DataEnv::canon(elem, v))
            .collect();
        self.env
            .arrays
            .insert(name.to_string(), (elem, ArrayData::Int(values)));
        self
    }

    /// Adds an `f32` array.
    #[must_use]
    pub fn f32(mut self, name: &str, values: impl Into<Vec<f32>>) -> ArrayBuilder {
        self.env.arrays.insert(
            name.to_string(),
            (ElemType::F32, ArrayData::F32(values.into())),
        );
        self
    }

    /// Adds a zero-filled array.
    #[must_use]
    pub fn zeroed(self, name: &str, elem: ElemType, len: usize) -> ArrayBuilder {
        if elem.is_float() {
            self.f32(name, vec![0.0; len])
        } else {
            self.int(name, elem, vec![0; len])
        }
    }

    /// Finishes the environment.
    #[must_use]
    pub fn build(self) -> DataEnv {
        self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_kernel() {
        let mut k = KernelBuilder::new("k", 32);
        let a = k.load("A", ElemType::I32);
        let b = k.bin_imm(VAluOp::Add, a, 5);
        k.store("B", b);
        let kernel = k.build().unwrap();
        assert_eq!(kernel.nodes().len(), 3);
        assert_eq!(kernel.elem_of(NodeId(1)), Some(ElemType::I32));
        assert_eq!(kernel.inputs(), vec!["A"]);
        assert_eq!(kernel.outputs(), vec!["B"]);
    }

    #[test]
    fn trip_must_be_aligned_to_max_width() {
        let mut k = KernelBuilder::new("k", 24); // not a multiple of 16
        let a = k.load("A", ElemType::I32);
        k.store("B", a);
        assert!(matches!(k.build(), Err(CompileError::Invalid { .. })));
    }

    #[test]
    fn effectless_kernel_rejected() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let _ = k.bin_imm(VAluOp::Add, a, 1);
        assert!(k.build().is_err());
    }

    #[test]
    fn mixed_float_int_rejected() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.load("B", ElemType::F32);
        let c = k.bin(VAluOp::Add, a, b);
        k.store("C", c);
        assert!(k.build().is_err());
    }

    #[test]
    fn sat_on_wide_elements_rejected() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.bin_imm(VAluOp::SatAdd, a, 1);
        k.store("B", b);
        assert!(k.build().is_err());
    }

    #[test]
    fn big_immediate_rejected() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load("A", ElemType::I32);
        let b = k.bin_imm(VAluOp::Add, a, 4096);
        k.store("B", b);
        assert!(k.build().is_err());
    }

    #[test]
    fn perm_block_must_divide_trip() {
        let mut k = KernelBuilder::new("k", 16);
        let a = k.load_perm("A", ElemType::I32, PermKind::Bfly { block: 32 });
        k.store("B", a);
        assert!(k.build().is_err());
    }

    #[test]
    fn canonicalisation_masks_to_width() {
        assert_eq!(DataEnv::canon(ElemType::I8, -1), 255);
        assert_eq!(DataEnv::canon(ElemType::I16, -2), 65534);
        assert_eq!(DataEnv::canon(ElemType::I32, -1), 0xFFFF_FFFF);
        let env = ArrayBuilder::new()
            .int("a", ElemType::I8, vec![-1, 300])
            .build();
        let (_, data) = env.get("a").unwrap();
        assert_eq!(*data, ArrayData::Int(vec![255, 44]));
    }
}
