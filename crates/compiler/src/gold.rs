//! Reference ("gold") evaluation of kernel semantics, directly in Rust.
//!
//! Differential tests pin every code generator — and the dynamically
//! translated microcode — to this evaluator. It shares the lane semantics
//! with the simulator through [`VAluOp::eval_lane`] and `RedOp::eval_*`, so
//! the three executables and the reference cannot drift apart.

use liquid_simd_isa::ElemType;

use crate::error::CompileError;
use crate::ir::{ArrayData, DataEnv, Kernel, Node, NodeId, ReduceInit};

fn invalid(kernel: &Kernel, reason: impl Into<String>) -> CompileError {
    CompileError::Invalid {
        kernel: kernel.name().to_string(),
        reason: reason.into(),
    }
}

fn gold(kernel: &Kernel, node: usize, reason: impl Into<String>) -> CompileError {
    CompileError::Gold {
        kernel: kernel.name().to_string(),
        node,
        reason: reason.into(),
    }
}

/// Looks up an operand's evaluated lanes, turning a dangling or
/// not-yet-evaluated reference into a typed error instead of a panic.
fn operand<'v>(
    values: &'v [Option<Vec<u32>>],
    kernel: &Kernel,
    node: usize,
    a: NodeId,
) -> Result<&'v Vec<u32>, CompileError> {
    values
        .get(a.0 as usize)
        .and_then(Option::as_ref)
        .ok_or_else(|| gold(kernel, node, format!("operand %{} is not evaluated", a.0)))
}

/// Resolves an operand's element type, with a typed error for value-less
/// nodes (stores/reductions produce no value to type).
fn operand_elem(kernel: &Kernel, node: usize, a: NodeId) -> Result<ElemType, CompileError> {
    kernel.elem_of(a).ok_or_else(|| {
        gold(
            kernel,
            node,
            format!("operand %{} has no element type", a.0),
        )
    })
}

/// Sign- or zero-extends a canonical bit pattern into a 32-bit lane.
fn extend(elem: ElemType, signed: bool, bits: i64) -> u32 {
    let raw = bits as u64 as u32;
    if !signed || elem == ElemType::I32 || elem == ElemType::F32 {
        return raw;
    }
    match elem {
        ElemType::I8 => (raw as u8 as i8) as i32 as u32,
        ElemType::I16 => (raw as u16 as i16) as i32 as u32,
        _ => raw,
    }
}

/// Evaluates one kernel against the environment, mutating stored arrays.
///
/// # Errors
///
/// Returns [`CompileError::Invalid`] for missing/mistyped/undersized arrays
/// and [`CompileError::Gold`] for malformed dataflow (a node referencing an
/// unevaluated or untyped value) — evaluation never panics, so fuzz-built
/// IR surfaces a diagnostic instead of crashing the driver.
pub fn eval_kernel(kernel: &Kernel, env: &mut DataEnv) -> Result<(), CompileError> {
    let trip = kernel.trip() as usize;
    let mut values: Vec<Option<Vec<u32>>> = vec![None; kernel.nodes().len()];

    // Reads happen before writes within one conceptual loop? No — the
    // scalar loop interleaves loads and stores per element; a kernel that
    // loads and stores the same array sees its *own* writes only for
    // earlier elements. Our IR evaluates whole-array SSA style, which is
    // only equivalent when no array is both loaded and stored with an
    // overlapping dependence. Kernels keep loads before stores per
    // iteration and never reread stored elements, so whole-vector
    // evaluation is exact. (Validated here: an array stored by this kernel
    // must not be loaded afterwards.)
    let mut stored: Vec<&str> = Vec::new();

    for (i, node) in kernel.nodes().iter().enumerate() {
        match node {
            Node::Load {
                array,
                elem,
                signed,
                offset,
                wide,
                perm,
            } => {
                if stored.contains(&array.as_str()) {
                    return Err(invalid(
                        kernel,
                        format!("array `{array}` loaded after being stored in the same kernel"),
                    ));
                }
                let (decl_elem, data) = env
                    .get(array)
                    .ok_or_else(|| invalid(kernel, format!("missing array `{array}`")))?;
                let storage_ok = if *wide {
                    decl_elem.is_float() == elem.is_float() && decl_elem.bytes() == 4
                } else {
                    decl_elem == elem
                };
                if !storage_ok {
                    return Err(invalid(
                        kernel,
                        format!("array `{array}` is {decl_elem}, kernel loads {elem}"),
                    ));
                }
                let off = *offset as usize;
                if data.len() < trip + off {
                    return Err(invalid(
                        kernel,
                        format!(
                            "array `{array}` has {} < {} elements",
                            data.len(),
                            trip + off
                        ),
                    ));
                }
                let mut lanes = Vec::with_capacity(trip);
                for idx in 0..trip {
                    let src = off
                        + match perm {
                            None => idx,
                            Some(kind) => {
                                let b = kind.block() as usize;
                                idx - idx % b + kind.source_index(idx)
                            }
                        };
                    let lane = match data {
                        // Wide reloads recover the exact 32-bit lane.
                        ArrayData::Int(v) if *wide => v[src] as u64 as u32,
                        ArrayData::Int(v) => extend(*elem, *signed, v[src]),
                        ArrayData::F32(v) => v[src].to_bits(),
                    };
                    lanes.push(lane);
                }
                values[i] = Some(lanes);
            }
            Node::ConstVecI { elem, pattern } => {
                let lanes = (0..trip)
                    .map(|idx| {
                        let raw = DataEnv::canon(*elem, pattern[idx % pattern.len()]);
                        extend(*elem, true, raw)
                    })
                    .collect();
                values[i] = Some(lanes);
            }
            Node::ConstVecF { pattern } => {
                let lanes = (0..trip)
                    .map(|idx| pattern[idx % pattern.len()].to_bits())
                    .collect();
                values[i] = Some(lanes);
            }
            Node::Bin { op, a, b } => {
                let va = operand(&values, kernel, i, *a)?;
                let vb = operand(&values, kernel, i, *b)?;
                let elem = operand_elem(kernel, i, *a)?;
                let lanes = va
                    .iter()
                    .zip(vb)
                    .map(|(&x, &y)| op.eval_lane(elem, x, y))
                    .collect();
                values[i] = Some(lanes);
            }
            Node::BinImm { op, a, imm } => {
                let va = operand(&values, kernel, i, *a)?;
                let elem = operand_elem(kernel, i, *a)?;
                let lanes = va
                    .iter()
                    .map(|&x| op.eval_lane(elem, x, *imm as u32))
                    .collect();
                values[i] = Some(lanes);
            }
            Node::Perm { kind, a } => {
                let va = operand(&values, kernel, i, *a)?;
                let b = kind.block() as usize;
                let lanes = (0..trip)
                    .map(|idx| va[idx - idx % b + kind.source_index(idx)])
                    .collect();
                values[i] = Some(lanes);
            }
            Node::Reduce { op, a, out, init } => {
                let va = operand(&values, kernel, i, *a)?;
                let is_float = kernel.is_float(*a);
                let result: (Option<i64>, Option<f32>) = if is_float {
                    let ReduceInit::F32(mut acc) = *init else {
                        return Err(invalid(kernel, "fp reduction needs an f32 init"));
                    };
                    for &lane in va {
                        acc = op.eval_f(acc, f32::from_bits(lane));
                    }
                    (None, Some(acc))
                } else {
                    let ReduceInit::Int(seed) = *init else {
                        return Err(invalid(kernel, "int reduction needs an int init"));
                    };
                    let mut acc = seed;
                    for &lane in va {
                        acc = op.eval_i(acc, lane as i32);
                    }
                    (Some(i64::from(acc as u32)), None)
                };
                let (decl_elem, data) = env
                    .arrays
                    .get_mut(out)
                    .ok_or_else(|| invalid(kernel, format!("missing array `{out}`")))?;
                match (result, data, *decl_elem) {
                    ((Some(v), None), ArrayData::Int(arr), ElemType::I32) => {
                        if arr.is_empty() {
                            return Err(invalid(kernel, format!("array `{out}` is empty")));
                        }
                        arr[0] = v;
                    }
                    ((None, Some(f)), ArrayData::F32(arr), ElemType::F32) => {
                        if arr.is_empty() {
                            return Err(invalid(kernel, format!("array `{out}` is empty")));
                        }
                        arr[0] = f;
                    }
                    _ => {
                        return Err(invalid(
                            kernel,
                            format!("reduction output `{out}` must be i32/f32 matching the value"),
                        ))
                    }
                }
            }
            Node::Store {
                array,
                value,
                offset,
                wide,
                perm,
            } => {
                let lanes = operand(&values, kernel, i, *value)?.clone();
                let elem = operand_elem(kernel, i, *value)?;
                let store_elem = if *wide {
                    if elem.is_float() {
                        ElemType::F32
                    } else {
                        ElemType::I32
                    }
                } else {
                    elem
                };
                let (decl_elem, data) = env
                    .arrays
                    .get_mut(array)
                    .ok_or_else(|| invalid(kernel, format!("missing array `{array}`")))?;
                if *decl_elem != store_elem {
                    return Err(invalid(
                        kernel,
                        format!("array `{array}` is {decl_elem}, kernel stores {store_elem}"),
                    ));
                }
                let off = *offset as usize;
                if data.len() < trip + off {
                    return Err(invalid(
                        kernel,
                        format!(
                            "array `{array}` has {} < {} elements",
                            data.len(),
                            trip + off
                        ),
                    ));
                }
                for (idx, &lane) in lanes.iter().enumerate() {
                    let dst = off
                        + match perm {
                            None => idx,
                            Some(kind) => {
                                let b = kind.block() as usize;
                                idx - idx % b + kind.source_index(idx)
                            }
                        };
                    match data {
                        ArrayData::Int(v) => {
                            v[dst] = DataEnv::canon(store_elem, i64::from(lane));
                        }
                        ArrayData::F32(v) => v[dst] = f32::from_bits(lane),
                    }
                }
                if !stored.contains(&array.as_str()) {
                    stored.push(array);
                }
            }
        }
    }
    Ok(())
}

/// Runs a whole workload (all kernels, `reps` times) and returns the final
/// environment.
///
/// # Errors
///
/// Propagates the first evaluation error.
pub fn run_gold(workload: &crate::driver::Workload) -> Result<DataEnv, CompileError> {
    let mut env = workload.data.clone();
    for _ in 0..workload.reps {
        for k in &workload.kernels {
            eval_kernel(k, &mut env)?;
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayBuilder, KernelBuilder};
    use liquid_simd_isa::{PermKind, RedOp, VAluOp};

    #[test]
    fn elementwise_and_reduction() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        let b = kb.bin_imm(VAluOp::Mul, a, 3);
        kb.store("B", b);
        kb.reduce(RedOp::Sum, b, "out", ReduceInit::Int(0));
        let k = kb.build().unwrap();
        let mut env = ArrayBuilder::new()
            .int("A", ElemType::I32, (1..=16).collect::<Vec<i64>>())
            .zeroed("B", ElemType::I32, 16)
            .zeroed("out", ElemType::I32, 1)
            .build();
        eval_kernel(&k, &mut env).unwrap();
        let (_, ArrayData::Int(b)) = env.get("B").unwrap() else {
            panic!("array `B` must hold integers after evaluation")
        };
        assert_eq!(b[0], 3);
        assert_eq!(b[15], 48);
        let (_, ArrayData::Int(out)) = env.get("out").unwrap() else {
            panic!("reduction output `out` must hold integers")
        };
        assert_eq!(out[0], 3 * (16 * 17 / 2));
    }

    #[test]
    fn saturation_and_narrow_width() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_u("A", ElemType::I8);
        let b = kb.bin_imm(VAluOp::SatAdd, a, 100);
        kb.store("B", b);
        let k = kb.build().unwrap();
        let mut env = ArrayBuilder::new()
            .int("A", ElemType::I8, vec![200; 16])
            .zeroed("B", ElemType::I8, 16)
            .build();
        eval_kernel(&k, &mut env).unwrap();
        let (_, ArrayData::Int(b)) = env.get("B").unwrap() else {
            panic!("array `B` must hold integers after evaluation")
        };
        assert_eq!(b[0], 255); // clamped
    }

    #[test]
    fn load_and_store_permutations_are_inverse() {
        // A load-side permutation `k` cancels against a store-side `k`:
        // the store scatters with exactly the indices the load gathered.
        let kind = PermKind::Rot { block: 4, amt: 1 };
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_perm("A", ElemType::I32, kind);
        kb.store_perm("B", a, kind);
        let k = kb.build().unwrap();
        let data: Vec<i64> = (0..16).collect();
        let mut env = ArrayBuilder::new()
            .int("A", ElemType::I32, data.clone())
            .zeroed("B", ElemType::I32, 16)
            .build();
        eval_kernel(&k, &mut env).unwrap();
        let (_, ArrayData::Int(b)) = env.get("B").unwrap() else {
            panic!("array `B` must hold integers after evaluation")
        };
        assert_eq!(*b, data, "perm then inverse-perm is identity");
    }

    #[test]
    fn load_after_store_is_rejected_at_build() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        kb.store("A", a);
        let a2 = kb.load("A", ElemType::I32);
        kb.store("B", a2);
        assert!(kb.build().is_err(), "IR validation catches the hazard");
    }

    #[test]
    fn in_place_permuted_update_is_rejected_at_build() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_perm("A", ElemType::I32, PermKind::Bfly { block: 4 });
        kb.store("A", a);
        assert!(kb.build().is_err());
    }
}
