//! Shared data-segment materialisation: permutation offset arrays and
//! constant arrays, deduplicated across kernels.

use liquid_simd_isa::{ElemType, PermKind, ProgramBuilder, SymId};

/// Caches compiler-generated data regions so that identical offset arrays
/// (`bfly` in the paper) and constant arrays (`cnst`) are emitted once.
/// Key for a deduplicated integer constant array: element type, values,
/// replication width.
type ConstIntKey = (ElemType, Vec<i64>, u32);

#[derive(Debug, Default)]
pub(crate) struct DataCtx {
    offsets: Vec<((PermKind, u32), SymId)>,
    const_i: Vec<(ConstIntKey, SymId)>,
    const_f: Vec<((Vec<u32>, u32), SymId)>,
    counter: usize,
}

impl DataCtx {
    pub fn new() -> DataCtx {
        DataCtx::default()
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.counter += 1;
        format!("__{}_{}", stem, self.counter)
    }

    /// The offset array for a permutation over `len` iterations (paper
    /// Table 1 categories 7/8: the compiler inserts a read-only array whose
    /// values uniquely identify the permutation).
    pub fn offsets(&mut self, b: &mut ProgramBuilder, kind: PermKind, len: u32) -> SymId {
        if let Some((_, id)) = self.offsets.iter().find(|(k, _)| *k == (kind, len)) {
            return *id;
        }
        let name = self.fresh("off");
        let values = kind.offsets(len as usize);
        let id = b.add_i32s(&name, &values);
        self.offsets.push(((kind, len), id));
        id
    }

    /// An integer constant array: `pattern` (canonical bit values) repeated
    /// to `len` elements, stored at the element width. `len == pattern.len()`
    /// gives the native pattern symbol; `len == trip` gives the full array
    /// the scalar representation indexes with the induction variable.
    pub fn const_int(
        &mut self,
        b: &mut ProgramBuilder,
        elem: ElemType,
        pattern: &[i64],
        len: u32,
    ) -> SymId {
        let key = (elem, pattern.to_vec(), len);
        if let Some((_, id)) = self.const_i.iter().find(|(k, _)| *k == key) {
            return *id;
        }
        let name = self.fresh("cnst");
        let repeated: Vec<i64> = (0..len as usize)
            .map(|i| pattern[i % pattern.len()])
            .collect();
        let id = match elem {
            ElemType::I8 => {
                let v: Vec<i8> = repeated.iter().map(|&x| x as u8 as i8).collect();
                b.add_i8s(&name, &v)
            }
            ElemType::I16 => {
                let v: Vec<i16> = repeated.iter().map(|&x| x as u16 as i16).collect();
                b.add_i16s(&name, &v)
            }
            _ => {
                let v: Vec<i32> = repeated.iter().map(|&x| x as u32 as i32).collect();
                b.add_i32s(&name, &v)
            }
        };
        self.const_i.push((key, id));
        id
    }

    /// An `f32` constant array, repeated to `len` elements.
    pub fn const_f32(&mut self, b: &mut ProgramBuilder, pattern: &[f32], len: u32) -> SymId {
        let key: (Vec<u32>, u32) = (pattern.iter().map(|f| f.to_bits()).collect(), len);
        if let Some((_, id)) = self.const_f.iter().find(|(k, _)| *k == key) {
            return *id;
        }
        let name = self.fresh("cnstf");
        let repeated: Vec<f32> = (0..len as usize)
            .map(|i| pattern[i % pattern.len()])
            .collect();
        let id = b.add_f32s(&name, &repeated);
        self.const_f.push((key, id));
        id
    }

    /// A base symbol shifted by `offset` elements — realises `A[i + k]`
    /// loads/stores as plain base+induction accesses. Deduplicated by
    /// `(array, offset)`.
    pub fn alias(
        &mut self,
        b: &mut ProgramBuilder,
        array: &str,
        offset_elems: u32,
        elem_bytes: u32,
    ) -> Option<SymId> {
        let base = b.symbol_named(array)?;
        if offset_elems == 0 {
            return Some(base);
        }
        let name = format!("__al_{array}_{offset_elems}");
        if let Some(existing) = b.symbol_named(&name) {
            return Some(existing);
        }
        Some(b.add_alias(&name, base, offset_elems * elem_bytes))
    }

    /// A one-off scalar literal (reduction initial values outside the
    /// `mov` immediate range).
    pub fn literal_i32(&mut self, b: &mut ProgramBuilder, value: i32) -> SymId {
        let name = self.fresh("lit");
        b.add_i32s(&name, &[value])
    }

    /// A one-off `f32` literal.
    pub fn literal_f32(&mut self, b: &mut ProgramBuilder, value: f32) -> SymId {
        let name = self.fresh("litf");
        b.add_f32s(&name, &[value])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_arrays_are_deduplicated() {
        let mut b = ProgramBuilder::new();
        let mut ctx = DataCtx::new();
        let k = PermKind::Bfly { block: 4 };
        let a = ctx.offsets(&mut b, k, 16);
        let again = ctx.offsets(&mut b, k, 16);
        assert_eq!(a, again);
        let other = ctx.offsets(&mut b, k, 32);
        assert_ne!(a, other);
    }

    #[test]
    fn constant_arrays_repeat_patterns() {
        let mut b = ProgramBuilder::new();
        let mut ctx = DataCtx::new();
        let id = ctx.const_int(&mut b, ElemType::I16, &[0xFF00, 0x00FF], 8);
        b.halt();
        let p = b.finish().unwrap();
        let sym = p.symbol(id).unwrap();
        assert_eq!(sym.size, 16);
        let start = (sym.addr - p.data_base) as usize;
        assert_eq!(p.data[start], 0x00);
        assert_eq!(p.data[start + 1], 0xFF);
        assert_eq!(p.data[start + 2], 0xFF);
        assert_eq!(p.data[start + 3], 0x00);
    }
}
