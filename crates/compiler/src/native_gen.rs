//! Native SIMD code generation: the vector loops a compiler with built-in
//! ISA support would emit (the paper's Figure 6 callout comparator).

use liquid_simd_isa::{
    encode::{MOV_IMM_MAX, MOV_IMM_MIN},
    AluOp, Base, Cond, ElemType, FReg, MemWidth, Operand2, ProgramBuilder, Reg, ScalarSrc, VAluOp,
    VReg, VectorInst,
};

use crate::alloc::{allocate, PoolSpec};
use crate::datactx::DataCtx;
use crate::error::CompileError;
use crate::ir::{Kernel, Node, NodeId, ReduceInit};
use crate::scalar_gen::Terminate;

const IND: Reg = Reg::R0;
const ZIDX: Reg = Reg::R12;
/// Scratch vector register for permuted stores.
const VSCRATCH: VReg = VReg::V15;

fn invalid(kernel: &Kernel, reason: impl Into<String>) -> CompileError {
    CompileError::Invalid {
        kernel: kernel.name().to_string(),
        reason: reason.into(),
    }
}

/// Whether every permutation in a kernel is executable on a `lanes`-wide
/// accelerator (block fits and tiles). Kernels that fail this cannot be
/// expressed as native vector code at this width and fall back to scalar.
#[must_use]
pub(crate) fn native_ok(kernel: &Kernel, lanes: usize) -> bool {
    kernel.nodes().iter().all(|n| {
        let perm = match n {
            Node::Load { perm, .. } | Node::Store { perm, .. } => *perm,
            Node::Perm { kind, .. } => Some(*kind),
            _ => None,
        };
        perm.is_none_or(|k| k.executable_at(lanes))
    })
}

/// Emits the native vector form of one kernel at width `lanes`. Returns
/// the instruction count.
#[allow(clippy::too_many_lines)]
pub(crate) fn emit_native(
    b: &mut ProgramBuilder,
    ctx: &mut DataCtx,
    k: &Kernel,
    lanes: usize,
    terminate: Terminate,
) -> Result<usize, CompileError> {
    debug_assert!(native_ok(k, lanes));
    let start = b.here();
    let trip = k.trip() as i32;

    // Value registers come from the vector file; accumulators and hoisted
    // constants from the scalar files.
    let mut int_accs: Vec<u8> = (1..=10).collect();
    let mut fp_accs: Vec<u8> = (0..=14).collect();
    let mut acc_reg: Vec<(usize, u8, bool)> = Vec::new();
    for (i, node) in k.nodes().iter().enumerate() {
        if let Node::Reduce { a, .. } = node {
            let is_float = k.is_float(*a);
            let pool = if is_float {
                &mut fp_accs
            } else {
                &mut int_accs
            };
            let r = pool.pop().ok_or_else(|| CompileError::RegisterPressure {
                kernel: k.name().to_string(),
            })?;
            acc_reg.push((i, r, is_float));
        }
    }
    // Hoist loop-invariant uniform constants into scalar registers; their
    // uses become vector-by-scalar broadcasts.
    let hoist_flags = k.hoistable_consts();
    let mut hoisted: std::collections::BTreeMap<usize, (u8, bool)> =
        std::collections::BTreeMap::new();
    let mut vpins: std::collections::BTreeMap<usize, u8> = std::collections::BTreeMap::new();
    let mut by_value: std::collections::BTreeMap<(bool, u32), u8> =
        std::collections::BTreeMap::new();
    const POOL_HEADROOM: usize = 3;
    for (i, &h) in hoist_flags.iter().enumerate() {
        if !h {
            continue;
        }
        let id = NodeId(i as u32);
        let is_float = k.is_float(id);
        let bits = k.uniform_const_bits(id).expect("hoistable const");
        if let Some(&r) = by_value.get(&(is_float, bits)) {
            hoisted.insert(i, (r, is_float));
            vpins.insert(i, 0);
            continue;
        }
        let pool = if is_float {
            &mut fp_accs
        } else {
            &mut int_accs
        };
        if pool.len() <= POOL_HEADROOM {
            continue; // budget exhausted: this constant stays in memory form
        }
        let r = pool.pop().expect("headroom checked");
        by_value.insert((is_float, bits), r);
        hoisted.insert(i, (r, is_float));
        vpins.insert(i, 0); // keep the vector allocator away
    }
    let asg = allocate(k, &PoolSpec::Shared((0..=14).collect()), &vpins)?;

    // Which constant-vector nodes can stay folded into their single use as
    // a `VAluConst` operand?
    let folded = fold_candidates(k, lanes);

    // ---- prologue ---------------------------------------------------------
    let hoisted_needs_pool = hoisted.iter().any(|(&i, &(_, is_float))| {
        let bits = k.uniform_const_bits(NodeId(i as u32)).expect("hoisted");
        is_float || !(MOV_IMM_MIN..=MOV_IMM_MAX).contains(&(bits as i32))
    });
    let need_zidx = !acc_reg.is_empty() || hoisted_needs_pool;
    if need_zidx {
        b.mov_imm(ZIDX, 0);
    }
    for (&i, &(r, is_float)) in &hoisted {
        let bits = k.uniform_const_bits(NodeId(i as u32)).expect("hoisted");
        if is_float {
            let sym = ctx.literal_f32(b, f32::from_bits(bits));
            b.ldf(FReg::of(r), Base::Sym(sym), ZIDX);
        } else {
            let v = bits as i32;
            if (MOV_IMM_MIN..=MOV_IMM_MAX).contains(&v) {
                b.mov_imm(Reg::of(r), v);
            } else {
                let sym = ctx.literal_i32(b, v);
                b.ld(MemWidth::W, Reg::of(r), Base::Sym(sym), ZIDX);
            }
        }
    }
    for &(node, r, is_float) in &acc_reg {
        let Node::Reduce { init, .. } = &k.nodes()[node] else {
            unreachable!()
        };
        match *init {
            ReduceInit::Int(v) => {
                if (MOV_IMM_MIN..=MOV_IMM_MAX).contains(&v) {
                    b.mov_imm(Reg::of(r), v);
                } else {
                    let sym = ctx.literal_i32(b, v);
                    b.ld(MemWidth::W, Reg::of(r), Base::Sym(sym), ZIDX);
                }
            }
            ReduceInit::F32(v) => {
                debug_assert!(is_float);
                let sym = ctx.literal_f32(b, v);
                b.ldf(FReg::of(r), Base::Sym(sym), ZIDX);
            }
        }
    }
    b.mov_imm(IND, 0);
    let top = b.new_label();
    b.bind(top);

    // ---- body ---------------------------------------------------------------
    let vreg = |id: NodeId| VReg::of(asg.reg[id.0 as usize].expect("vector register"));
    for (i, node) in k.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        match node {
            Node::Load {
                array,
                elem,
                signed,
                offset,
                wide,
                perm,
            } => {
                let storage = if *wide {
                    if elem.is_float() {
                        ElemType::F32
                    } else {
                        ElemType::I32
                    }
                } else {
                    *elem
                };
                let arr = ctx
                    .alias(b, array, *offset, storage.bytes())
                    .ok_or_else(|| invalid(k, format!("unknown array `{array}`")))?;
                b.push(VectorInst::VLd {
                    elem: storage,
                    signed: *signed && storage != ElemType::I32,
                    vd: vreg(id),
                    base: Base::Sym(arr),
                    index: IND,
                });
                if let Some(kind) = perm {
                    b.push(VectorInst::VPerm {
                        kind: *kind,
                        elem: *elem,
                        vd: vreg(id),
                        vn: vreg(id),
                    });
                }
            }
            Node::ConstVecI { elem, pattern } => {
                if hoisted.contains_key(&i) {
                    // loaded once into a scalar register in the prologue
                } else if pattern.len() > 1 {
                    // Periodic constant tables stream from a trip-length
                    // array, exactly like the scalar representation (and
                    // like real vector code keeps twiddle tables in
                    // memory). This keeps the native comparator honest:
                    // folding them into `VAluConst` would give native code
                    // a cache-footprint advantage no compiler-produced
                    // binary would have.
                    let sym = ctx.const_int(b, *elem, pattern, k.trip());
                    b.push(VectorInst::VLd {
                        elem: *elem,
                        signed: *elem != ElemType::I32,
                        vd: vreg(id),
                        base: Base::Sym(sym),
                        index: IND,
                    });
                } else if !folded[i] {
                    // Materialise: splat zero then OR in the pattern.
                    let sym = ctx.const_int(b, *elem, pattern, pattern.len() as u32);
                    b.push(VectorInst::VSplat {
                        elem: *elem,
                        vd: vreg(id),
                        imm: 0,
                    });
                    b.push(VectorInst::VAluConst {
                        op: VAluOp::Orr,
                        elem: *elem,
                        vd: vreg(id),
                        vn: vreg(id),
                        cnst: sym,
                    });
                }
            }
            Node::ConstVecF { pattern } => {
                if hoisted.contains_key(&i) {
                    // loaded once into a scalar register in the prologue
                } else if pattern.len() > 1 {
                    let sym = ctx.const_f32(b, pattern, k.trip());
                    b.push(VectorInst::VLd {
                        elem: ElemType::F32,
                        signed: false,
                        vd: vreg(id),
                        base: Base::Sym(sym),
                        index: IND,
                    });
                } else if !folded[i] {
                    let sym = ctx.const_f32(b, pattern, pattern.len() as u32);
                    b.push(VectorInst::VSplat {
                        elem: ElemType::F32,
                        vd: vreg(id),
                        imm: 0,
                    });
                    b.push(VectorInst::VAluConst {
                        op: VAluOp::Add,
                        elem: ElemType::F32,
                        vd: vreg(id),
                        vn: vreg(id),
                        cnst: sym,
                    });
                }
            }
            Node::Bin { op, a, b: rhs } => {
                let elem = k.elem_of(*a).expect("value");
                // Hoisted uniform constants become vector-by-scalar
                // broadcasts (Neon-style), taking priority over the
                // memory-resident VAluConst form.
                let broadcast = if let Some(&(r, is_float)) = hoisted.get(&(rhs.0 as usize)) {
                    Some((*a, r, is_float))
                } else if let Some(&(r, is_float)) = hoisted.get(&(a.0 as usize)) {
                    debug_assert!(op.is_commutative(), "hoistability guarantees this");
                    Some((*rhs, r, is_float))
                } else {
                    None
                };
                if let Some((vec_operand, r, is_float)) = broadcast {
                    let src = if is_float {
                        ScalarSrc::F(FReg::of(r))
                    } else {
                        ScalarSrc::R(Reg::of(r))
                    };
                    b.push(VectorInst::VAluScalar {
                        op: *op,
                        elem,
                        vd: vreg(id),
                        vn: vreg(vec_operand),
                        src,
                    });
                    continue;
                }
                // Prefer the VAluConst form when one operand is a folded
                // constant vector (paper Table 1 category 3).
                let (vn, const_operand) =
                    match (&k.nodes()[a.0 as usize], &k.nodes()[rhs.0 as usize]) {
                        (_, Node::ConstVecI { .. } | Node::ConstVecF { .. })
                            if folded[rhs.0 as usize] =>
                        {
                            (*a, Some(*rhs))
                        }
                        (Node::ConstVecI { .. } | Node::ConstVecF { .. }, _)
                            if folded[a.0 as usize] && op.is_commutative() =>
                        {
                            (*rhs, Some(*a))
                        }
                        _ => (*a, None),
                    };
                match const_operand {
                    Some(c) => {
                        let sym = const_sym(b, ctx, k, c)?;
                        b.push(VectorInst::VAluConst {
                            op: *op,
                            elem,
                            vd: vreg(id),
                            vn: vreg(vn),
                            cnst: sym,
                        });
                    }
                    None => {
                        b.push(VectorInst::VAlu {
                            op: *op,
                            elem,
                            vd: vreg(id),
                            vn: vreg(*a),
                            vm: vreg(*rhs),
                        });
                    }
                }
            }
            Node::BinImm { op, a, imm } => {
                let elem = k.elem_of(*a).expect("value");
                b.push(VectorInst::VAluImm {
                    op: *op,
                    elem,
                    vd: vreg(id),
                    vn: vreg(*a),
                    imm: *imm,
                });
            }
            Node::Perm { kind, a } => {
                let elem = k.elem_of(*a).expect("value");
                b.push(VectorInst::VPerm {
                    kind: *kind,
                    elem,
                    vd: vreg(id),
                    vn: vreg(*a),
                });
            }
            Node::Reduce { op, a, .. } => {
                let (_, r, is_float) = *acc_reg
                    .iter()
                    .find(|(n, _, _)| *n == i)
                    .expect("accumulator allocated");
                if is_float {
                    b.push(VectorInst::VRedF {
                        op: *op,
                        fd: FReg::of(r),
                        vn: vreg(*a),
                    });
                } else {
                    b.push(VectorInst::VRedI {
                        op: *op,
                        elem: k.elem_of(*a).expect("value"),
                        rd: Reg::of(r),
                        vn: vreg(*a),
                    });
                }
            }
            Node::Store {
                array,
                value,
                offset,
                wide,
                perm,
            } => {
                let elem = k.elem_of(*value).expect("value");
                let storage = if *wide {
                    if elem.is_float() {
                        ElemType::F32
                    } else {
                        ElemType::I32
                    }
                } else {
                    elem
                };
                let arr = ctx
                    .alias(b, array, *offset, storage.bytes())
                    .ok_or_else(|| invalid(k, format!("unknown array `{array}`")))?;
                let vs = match perm {
                    None => vreg(*value),
                    Some(kind) => {
                        b.push(VectorInst::VPerm {
                            kind: kind.inverse(),
                            elem: storage,
                            vd: VSCRATCH,
                            vn: vreg(*value),
                        });
                        VSCRATCH
                    }
                };
                b.push(VectorInst::VSt {
                    elem: storage,
                    vs,
                    base: Base::Sym(arr),
                    index: IND,
                });
            }
        }
    }

    // ---- loop control --------------------------------------------------------
    b.alu(AluOp::Add, IND, IND, Operand2::Imm(lanes as i32));
    b.cmp(IND, Operand2::Imm(trip));
    b.b(Cond::Lt, top);

    // ---- epilogue ---------------------------------------------------------------
    for &(node, r, is_float) in &acc_reg {
        let Node::Reduce { out, .. } = &k.nodes()[node] else {
            unreachable!()
        };
        let arr = b
            .symbol_named(out)
            .ok_or_else(|| invalid(k, format!("unknown array `{out}`")))?;
        if is_float {
            b.stf(FReg::of(r), Base::Sym(arr), ZIDX);
        } else {
            b.st(MemWidth::W, Reg::of(r), Base::Sym(arr), ZIDX);
        }
    }
    if terminate == Terminate::Ret {
        b.ret();
    }
    Ok((b.here() - start) as usize)
}

/// Emits (or reuses) the pattern symbol of a constant-vector node.
fn const_sym(
    b: &mut ProgramBuilder,
    ctx: &mut DataCtx,
    k: &Kernel,
    id: NodeId,
) -> Result<liquid_simd_isa::SymId, CompileError> {
    match &k.nodes()[id.0 as usize] {
        Node::ConstVecI { elem, pattern } => {
            Ok(ctx.const_int(b, *elem, pattern, pattern.len() as u32))
        }
        Node::ConstVecF { pattern } => Ok(ctx.const_f32(b, pattern, pattern.len() as u32)),
        _ => Err(invalid(k, "const_sym on non-constant node")),
    }
}

/// For each node: `true` if it is a constant vector whose every use can
/// consume it as a `VAluConst` operand (so no register materialisation is
/// needed).
fn fold_candidates(k: &Kernel, _lanes: usize) -> Vec<bool> {
    let nodes = k.nodes();
    let mut foldable: Vec<bool> = nodes
        .iter()
        .map(|n| match n {
            // Only uniform patterns fold; periodic tables stream from
            // memory (see the ConstVec emission arms).
            Node::ConstVecI { pattern, .. } => pattern.len() == 1,
            Node::ConstVecF { pattern } => pattern.len() == 1,
            _ => false,
        })
        .collect();
    for node in nodes {
        match node {
            Node::Bin { op, a, b } => {
                // `b` position always folds; `a` folds if the op commutes
                // and `b` is not itself a folded constant.
                let b_is_const = matches!(
                    nodes[b.0 as usize],
                    Node::ConstVecI { .. } | Node::ConstVecF { .. }
                );
                if !b_is_const {
                    // a used in non-b position: needs commutativity.
                    if !op.is_commutative() {
                        foldable[a.0 as usize] = false;
                    }
                } else if matches!(
                    nodes[a.0 as usize],
                    Node::ConstVecI { .. } | Node::ConstVecF { .. }
                ) {
                    // Both constant: materialise `a`.
                    foldable[a.0 as usize] = false;
                }
            }
            Node::BinImm { a, .. } | Node::Perm { a, .. } | Node::Reduce { a, .. } => {
                foldable[a.0 as usize] = false
            }
            Node::Store { value, .. } => foldable[value.0 as usize] = false,
            _ => {}
        }
    }
    foldable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;
    use liquid_simd_isa::{Inst, PermKind, RedOp};

    fn emit(k: &Kernel, lanes: usize) -> liquid_simd_isa::Program {
        let mut b = ProgramBuilder::new();
        for name in ["A", "B", "C", "out"] {
            b.reserve(name, 64, 4);
        }
        let mut ctx = DataCtx::new();
        let f = b.new_label();
        b.bl(f);
        b.halt();
        b.bind_named(f, k.name());
        emit_native(&mut b, &mut ctx, k, lanes, Terminate::Ret).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn vector_loop_shape() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        let c = kb.bin_imm(VAluOp::Add, a, 1);
        kb.store("B", c);
        let p = emit(&kb.build().unwrap(), 8);
        let text = p.disassemble();
        assert!(text.contains("vld.i32"), "{text}");
        assert!(text.contains("vadd.i32"), "{text}");
        assert!(text.contains("vst.i32"), "{text}");
        assert!(text.contains("add r0, r0, #8"), "{text}");
    }

    #[test]
    fn periodic_constant_streams_from_memory() {
        // Periodic constant tables load from a trip-length array each
        // iteration — matching both the scalar representation and real
        // vector code (twiddle tables in memory).
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        let m = kb.constv(ElemType::I32, vec![0xFF, 0xFF00]);
        let c = kb.bin(VAluOp::And, a, m);
        kb.store("B", c);
        let p = emit(&kb.build().unwrap(), 4);
        let text = p.disassemble();
        assert!(text.contains("vld.i32 v1, [__cnst_1 + r0]"), "{text}");
        assert!(text.contains("vand.i32"), "{text}");
        assert!(!text.contains("vsplat"), "{text}");
    }

    #[test]
    fn uniform_constant_hoists_to_broadcast() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        let m = kb.constv(ElemType::I32, vec![21000]); // beyond mov-imm? no: fits
        let c = kb.bin(VAluOp::Mul, a, m);
        kb.store("B", c);
        let p = emit(&kb.build().unwrap(), 4);
        let text = p.disassemble();
        // Hoisted into a scalar register before the loop, used broadcast.
        assert!(text.contains("mov r10, #21000"), "{text}");
        assert!(text.contains("vmul.i32 v0, v0, r10"), "{text}");
    }

    #[test]
    fn nonfoldable_uniform_constant_materialises_via_valuconst() {
        // `sub(const, x)` cannot commute into a broadcast second operand,
        // so the constant is materialised into a vector register.
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load("A", ElemType::I32);
        let m = kb.constv(ElemType::I32, vec![7]);
        let c = kb.bin(VAluOp::Sub, m, a);
        kb.store("B", c);
        let p = emit(&kb.build().unwrap(), 4);
        let text = p.disassemble();
        assert!(text.contains("vsplat.i32"), "{text}");
        assert!(text.contains("vorr.i32"), "{text}");
        assert!(text.contains("vsub.i32"), "{text}");
    }

    #[test]
    fn permutes_and_reductions() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_perm("A", ElemType::F32, PermKind::Rev { block: 4 });
        let b2 = kb.load("B", ElemType::F32);
        let c = kb.bin(VAluOp::Mul, a, b2);
        kb.reduce(RedOp::Sum, c, "out", ReduceInit::F32(0.0));
        let p = emit(&kb.build().unwrap(), 8);
        let text = p.disassemble();
        assert!(text.contains("vrev.b4.f32"), "{text}");
        assert!(text.contains("vredsum.f32 f14"), "{text}");
        assert!(text.contains("stf [out + r12], f14"), "{text}");
        // The program contains real vector instructions.
        assert!(p.code.iter().filter(|i| matches!(i, Inst::V(_))).count() >= 4);
    }

    #[test]
    fn native_ok_respects_lane_width() {
        let mut kb = KernelBuilder::new("k", 16);
        let a = kb.load_perm("A", ElemType::I32, PermKind::Bfly { block: 8 });
        kb.store("B", a);
        let k = kb.build().unwrap();
        assert!(native_ok(&k, 8));
        assert!(native_ok(&k, 16));
        assert!(!native_ok(&k, 4));
    }
}
