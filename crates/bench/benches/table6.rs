//! Bench for paper Table 6: first-call gaps of outlined hot loops.

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_table6(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let rows = experiments::table6(&ws).unwrap();
    println!("{}", liquid_simd_bench::render_table6(&rows));
    let small = liquid_simd_workloads::smoke();
    c.bench_function("table6/measure_smoke_set", |bench| {
        bench.iter(|| experiments::table6(&small).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_table6
}
criterion_main!(benches);
