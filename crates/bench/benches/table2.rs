//! Bench for paper Table 2: translator synthesis estimate + host-side
//! translation throughput (instructions observed per second).

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::{build_liquid, run, MachineConfig};

fn bench_table2(c: &mut Criterion) {
    println!("{}", liquid_simd_bench::render_table2());
    // Translation throughput: time a full liquid run (dominated by the
    // translator on first calls) of a small benchmark.
    let w = liquid_simd_workloads::gsmdec();
    let b = build_liquid(&w).unwrap();
    c.bench_function("table2/translate_and_run_gsmdec_w8", |bench| {
        bench.iter(|| run(&b.program, MachineConfig::liquid(8)).unwrap().report.cycles)
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_table2
}
criterion_main!(benches);
