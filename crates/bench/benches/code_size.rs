//! Bench for the paper's code-size-overhead measurement (§5).

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_code_size(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let rows = experiments::code_size(&ws).unwrap();
    println!("{}", liquid_simd_bench::render_code_size(&rows));
    c.bench_function("code_size/all_benchmarks", |bench| {
        bench.iter(|| experiments::code_size(&ws).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_code_size
}
criterion_main!(benches);
