//! Bench for paper Table 5: outlined-function sizes across all benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_table5(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let rows = experiments::table5(&ws).unwrap();
    println!("{}", liquid_simd_bench::render_table5(&rows));
    c.bench_function("table5/compile_all_liquid", |bench| {
        bench.iter(|| experiments::table5(&ws).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_table5
}
criterion_main!(benches);
