//! Bench for the paper's microcode-cache working-set measurement (§5).

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_mcache(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let rows = experiments::mcache(&ws).unwrap();
    println!("{}", liquid_simd_bench::render_mcache(&rows));
    let small = liquid_simd_workloads::smoke();
    c.bench_function("mcache/measure_smoke_set", |bench| {
        bench.iter(|| experiments::mcache(&small).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_mcache
}
criterion_main!(benches);
