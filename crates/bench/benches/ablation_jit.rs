//! Ablation A2: hardware translator vs software JIT (paper §2 argues
//! hardware avoids stealing CPU time from embedded workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_jit(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let rows = experiments::ablation_jit(&ws, 40).unwrap();
    println!("{}", liquid_simd_bench::render_jit(&rows));
    let small = liquid_simd_workloads::smoke();
    c.bench_function("ablation_jit/smoke_set", |bench| {
        bench.iter(|| experiments::ablation_jit(&small, 40).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_jit
}
criterion_main!(benches);
