//! Bench for paper Figure 6: the width sweep, plus the overhead callout.

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_figure6(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let rows = experiments::figure6(&ws, &liquid_simd_bench::WIDTHS).unwrap();
    println!("{}", liquid_simd_bench::render_figure6(&rows));
    println!("{}", liquid_simd_bench::render_callout());
    let small = liquid_simd_workloads::smoke();
    c.bench_function("figure6/sweep_smoke_set", |bench| {
        bench.iter(|| experiments::figure6(&small, &[2, 8]).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_figure6
}
criterion_main!(benches);
