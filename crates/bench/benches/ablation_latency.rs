//! Ablation A1: translation-latency sensitivity (paper: tens of cycles per
//! instruction are tolerable because call gaps exceed 300 cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use liquid_simd::experiments;

fn bench_latency(c: &mut Criterion) {
    let ws = liquid_simd_workloads::all();
    let costs = [1u64, 10, 40, 100];
    let rows = experiments::ablation_latency(&ws, &costs).unwrap();
    println!("{}", liquid_simd_bench::render_latency(&rows, &costs));
    let small = liquid_simd_workloads::smoke();
    c.bench_function("ablation_latency/smoke_set", |bench| {
        bench.iter(|| experiments::ablation_latency(&small, &[1, 100]).unwrap().len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_latency
}
criterion_main!(benches);
