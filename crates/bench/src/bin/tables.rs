//! Regenerates every table and figure of the paper's evaluation in one
//! pass. Used to produce EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p liquid-simd-bench --bin tables
//! ```

use liquid_simd::experiments;
use liquid_simd_bench as render;

fn main() {
    let workloads = liquid_simd_workloads::all();
    let widths = render::WIDTHS;

    println!("{}", render::render_table2());

    let t5 = experiments::table5(&workloads).expect("table5");
    println!("{}", render::render_table5(&t5));

    let t6 = experiments::table6(&workloads).expect("table6");
    println!("{}", render::render_table6(&t6));

    let f6 = experiments::figure6(&workloads, &widths).expect("figure6");
    println!("{}", render::render_figure6(&f6));

    println!("{}", render::render_callout());

    let cs = experiments::code_size(&workloads).expect("code size");
    println!("{}", render::render_code_size(&cs));

    let mc = experiments::mcache(&workloads).expect("mcache");
    println!("{}", render::render_mcache(&mc));

    let costs = [1u64, 10, 40, 100];
    let lat = experiments::ablation_latency(&workloads, &costs).expect("latency ablation");
    println!("{}", render::render_latency(&lat, &costs));

    let jit = experiments::ablation_jit(&workloads, 40).expect("jit ablation");
    println!("{}", render::render_jit(&jit));
}
