//! Regenerates every table and figure of the paper's evaluation in one
//! pass. Used to produce EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p liquid-simd-bench --bin tables
//! ```

use liquid_simd::experiments;
use liquid_simd_bench as render;

fn main() {
    let workloads = liquid_simd_workloads::all();
    let widths = render::WIDTHS;
    // Fan the independent simulations across cores; any job count yields
    // identical tables (see liquid_simd::harness).
    let jobs = liquid_simd::default_jobs();

    println!("{}", render::render_table2());

    let t5 = experiments::table5_jobs(&workloads, jobs).expect("table5");
    println!("{}", render::render_table5(&t5));

    let t6 = experiments::table6_jobs(&workloads, jobs).expect("table6");
    println!("{}", render::render_table6(&t6));

    let f6 = experiments::figure6_jobs(&workloads, &widths, jobs).expect("figure6");
    println!("{}", render::render_figure6(&f6));

    println!("{}", render::render_callout());

    let cs = experiments::code_size_jobs(&workloads, jobs).expect("code size");
    println!("{}", render::render_code_size(&cs));

    let mc = experiments::mcache_jobs(&workloads, jobs).expect("mcache");
    println!("{}", render::render_mcache(&mc));

    let costs = [1u64, 10, 40, 100];
    let lat = experiments::ablation_latency_jobs(&workloads, &costs, jobs).expect("latency ablation");
    println!("{}", render::render_latency(&lat, &costs));

    let jit = experiments::ablation_jit_jobs(&workloads, 40, jobs).expect("jit ablation");
    println!("{}", render::render_jit(&jit));
}
