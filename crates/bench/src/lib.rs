//! Shared helpers for the benchmark harness: pretty-printers that emit the
//! paper's tables and figures from the experiment drivers in
//! [`liquid_simd::experiments`].
//!
//! Two entry points exist for every artifact:
//!
//! * a **Criterion bench** (`cargo bench -p liquid-simd-bench --bench
//!   <name>`) that times the measurement *and* prints the regenerated
//!   table/figure once;
//! * the `tables` binary (`cargo run --release -p liquid-simd-bench --bin
//!   tables`) that prints every artifact in one pass (used to fill
//!   EXPERIMENTS.md).

use liquid_simd::experiments::{
    self, CodeSizeRow, Figure6Row, JitAblationRow, LatencyAblationRow, McacheRow, Table5Row,
    Table6Row,
};
use liquid_simd::translator::area::{estimate, SynthesisEstimate, TranslatorGeometry};
use liquid_simd::Workload;

/// The width sweep used everywhere (paper Figure 6).
pub const WIDTHS: [usize; 4] = [2, 4, 8, 16];

/// Renders Table 2 (dynamic-translator synthesis estimate).
#[must_use]
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str("Table 2: dynamic translator synthesis (area/delay model; see DESIGN.md)\n");
    out.push_str(
        "  width  crit.path  delay(ns)  fmax(MHz)  cells     mm^2    regstate  buffer\n",
    );
    for lanes in WIDTHS {
        let e: SynthesisEstimate = estimate(&TranslatorGeometry::with_lanes(lanes));
        out.push_str(&format!(
            "  {:<6} {:<10} {:<10.2} {:<10.0} {:<9.0} {:<7.3} {:<9.0} {:<8.0}\n",
            lanes,
            e.critical_path_gates,
            e.delay_ns(),
            e.fmax_mhz(),
            e.total_cells(),
            e.area_mm2(),
            e.regstate_cells,
            e.buffer_cells,
        ));
    }
    out.push_str("  paper (8-wide): 16 gates, 1.51 ns, 174,117 cells, < 0.2 mm^2\n");
    out
}

/// Renders Table 5 rows.
#[must_use]
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 5: scalar instructions in outlined functions\n");
    out.push_str("  benchmark       fns     mean   max\n");
    for r in rows {
        out.push_str(&format!("  {r}\n"));
    }
    out
}

/// Renders Table 6 rows.
#[must_use]
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 6: cycles between first two consecutive calls to outlined loops\n");
    out.push_str("  benchmark      <150  <300  >=300       mean\n");
    for r in rows {
        out.push_str(&format!("  {r}\n"));
    }
    out
}

/// Renders Figure 6 rows.
#[must_use]
pub fn render_figure6(rows: &[Figure6Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: speedup vs scalar baseline\n");
    out.push_str(
        "  benchmark      liquid @2/4/8/16           | built-in ISA @2/4/8/16    | native @2/4/8/16\n",
    );
    for r in rows {
        out.push_str(&format!("  {r}\n"));
    }
    let worst = rows
        .iter()
        .map(|r| r.overhead(8))
        .fold(f64::MIN, f64::max);
    out.push_str(&format!(
        "  worst built-in-vs-liquid speedup difference at 8 lanes: {worst:.3}\n"
    ));
    out
}

/// Renders code-size rows.
#[must_use]
pub fn render_code_size(rows: &[CodeSizeRow]) -> String {
    let mut out = String::new();
    out.push_str("Code size: plain vs Liquid binaries. These binaries are the hot\n");
    out.push_str("loops only; the paper's <1% is vs whole applications, shown in the\n");
    out.push_str("last column against a 256 KiB application text.\n");
    out.push_str("  benchmark        plain   liquid  ovhd      +data   vs-app\n");
    for r in rows {
        out.push_str(&format!(
            "  {r} {:>8.3}%\n",
            r.overhead_vs_app(256 * 1024) * 100.0
        ));
    }
    out
}

/// Renders microcode-cache rows.
#[must_use]
pub fn render_mcache(rows: &[McacheRow]) -> String {
    let mut out = String::new();
    out.push_str("Microcode cache working set at the paper's 8x64 geometry (2 KB)\n");
    out.push_str("  benchmark      loops  uops  evict  mcode%\n");
    for r in rows {
        out.push_str(&format!("  {r}\n"));
    }
    out
}

/// Renders the translation-latency ablation.
#[must_use]
pub fn render_latency(rows: &[LatencyAblationRow], costs: &[u64]) -> String {
    let mut out = String::new();
    out.push_str(
        "Ablation A1: cycles at increasing translation cost (cycles/observed instr)\n  benchmark     ",
    );
    for c in costs {
        out.push_str(&format!(" cost={c:<10}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("  {:<14}", r.benchmark));
        for c in costs {
            out.push_str(&format!(" {:<15}", r.cycles_by_cost[c]));
        }
        out.push('\n');
    }
    out
}

/// Renders the hardware-vs-JIT ablation.
#[must_use]
pub fn render_jit(rows: &[JitAblationRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablation A2: hardware translator vs software JIT (stalls the CPU)\n");
    out.push_str("  benchmark      hw-cycles      jit-cycles     jit/hw\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<14} {:<14} {:<14} {:.3}\n",
            r.benchmark,
            r.hw_cycles,
            r.jit_cycles,
            r.jit_cycles as f64 / r.hw_cycles as f64
        ));
    }
    out
}

/// Runs and renders the FIR overhead callout at an amortising repetition
/// count (paper: worst case ~0.001 speedup difference).
#[must_use]
pub fn render_callout() -> String {
    let mut w: Workload = liquid_simd_workloads::fir();
    w.reps = 3000;
    let c = experiments::overhead_callout(&w).expect("callout runs");
    format!(
        "Figure 6 callout (FIR, {} calls): liquid {:.4}x, built-in {:.4}x, difference {:.4}\n",
        w.reps,
        c.liquid_speedup,
        c.builtin_speedup,
        c.difference()
    )
}
