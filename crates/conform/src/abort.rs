//! The abort-point injection sweep.
//!
//! The paper's core safety claim (§4.3) is that the dynamic translator can
//! be interrupted at *any* retired instruction of a translating region —
//! a context switch, an interrupt — and the machine simply keeps executing
//! the scalar loop, bit-for-bit correct, with **no partial microcode** left
//! in the translation cache. This module turns that claim into an
//! exhaustive experiment: run a workload once cleanly to learn each
//! translation window `[begin_retired, end_retired]`, then re-run the
//! whole program once per interior retire index with an external abort
//! injected exactly there, checking the output against the gold evaluator
//! and the microcode cache for partial entries every time.
//!
//! The sweep starts at `begin_retired + 1`: translation begins in the
//! control-flow phase of a machine step, *after* that step's injection
//! point, so an injection at `begin_retired` lands before the translator
//! is active and would be a vacuous no-op.

use liquid_simd::{build_liquid, gold, verify_against_gold, MachineConfig, Workload};

use crate::gen::LegalSpec;
use crate::oracle::run_full;

/// The result of sweeping one workload at one lane width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Workload name.
    pub name: String,
    /// Lane width of the machine swept.
    pub lanes: usize,
    /// Number of injection points exercised (sum over windows).
    pub points: u64,
    /// Whether every injection point passed.
    pub passed: bool,
    /// First failing point, empty when passed.
    pub detail: String,
}

/// Sweeps an external abort across every retired-instruction index of
/// every completed translation window of `workload`, asserting that each
/// aborted run still produces the gold result and leaves no microcode
/// entry for the aborted region.
#[must_use]
pub fn sweep_workload(workload: &Workload, lanes: usize) -> SweepOutcome {
    let name = workload.name.clone();
    let fail = |detail: String| SweepOutcome {
        name: name.clone(),
        lanes,
        points: 0,
        passed: false,
        detail,
    };

    let gold_env = match gold::run_gold(workload) {
        Ok(env) => env,
        Err(e) => return fail(format!("gold evaluation failed: {e}")),
    };
    let build = match build_liquid(workload) {
        Ok(b) => b,
        Err(e) => return fail(format!("liquid build failed: {e}")),
    };
    let clean = match run_full(&build.program, MachineConfig::liquid(lanes)) {
        Ok((report, _, _)) => report,
        Err(e) => return fail(format!("clean run failed: {e}")),
    };
    let windows: Vec<_> = clean.windows.iter().filter(|w| w.completed).collect();
    if windows.is_empty() {
        return fail("no completed translation window to sweep".to_string());
    }

    let mut points = 0u64;
    for window in windows {
        for n in window.begin_retired + 1..=window.end_retired {
            points += 1;
            let mut cfg = MachineConfig::liquid(lanes);
            cfg.interrupt_at = vec![n];
            let mut m = liquid_simd::Machine::new(&build.program, cfg);
            let report = match m.run() {
                Ok(r) => r,
                Err(e) => {
                    return fail(format!("inject@{n}: run failed: {e}"));
                }
            };
            if !crate::oracle::saw_injected_abort(&report) {
                return fail(format!(
                    "inject@{n}: no injected abort recorded (window {:#x} [{}, {}])",
                    window.func_pc, window.begin_retired, window.end_retired
                ));
            }
            if let Err(e) = verify_against_gold("inject", &build.program, m.memory(), &gold_env) {
                return fail(format!("inject@{n}: output diverged from gold: {e}"));
            }
            // A single-rep workload never re-enters the region after the
            // abort, so any cache entry for it would be a partial one.
            if workload.reps == 1 {
                let partial = m
                    .microcode_snapshot()
                    .iter()
                    .any(|(pc, _)| *pc == window.func_pc);
                if partial {
                    return fail(format!(
                        "inject@{n}: microcode cache holds an entry for aborted \
                         region {:#x}",
                        window.func_pc
                    ));
                }
            }
        }
    }

    SweepOutcome {
        name,
        lanes,
        points,
        passed: true,
        detail: String::new(),
    }
}

/// The two fixed workloads the conformance run always sweeps: a saturating
/// i8 kernel (value-clamping path) and an i32 multiply-reduce (reduction
/// epilogue path). Single rep so the no-partial-entry check is decisive.
#[must_use]
pub fn sweep_specs() -> Vec<LegalSpec> {
    vec![LegalSpec::sweep_sat(), LegalSpec::sweep_red()]
}

/// Runs the full standard sweep (both fixed workloads) at one lane width.
#[must_use]
pub fn run_standard_sweeps(lanes: usize) -> Vec<SweepOutcome> {
    sweep_specs()
        .iter()
        .map(|spec| match spec.to_workload() {
            Ok(w) => sweep_workload(&w, lanes),
            Err(e) => SweepOutcome {
                name: spec.name.clone(),
                lanes,
                points: 0,
                passed: false,
                detail: format!("sweep spec does not build: {e}"),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_sweeps_pass_at_width_8() {
        for outcome in run_standard_sweeps(8) {
            assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
            assert!(outcome.points > 0, "{}: swept nothing", outcome.name);
        }
    }

    #[test]
    fn sweep_detects_missing_window() {
        // A trip-less spec cannot exist, but a workload whose region never
        // completes translation (too many uops) must be reported, not
        // silently passed.
        let spec = LegalSpec::sweep_sat();
        let w = spec.to_workload().unwrap();
        // Lanes = 0 (scalar-only) never translates.
        let outcome = sweep_workload(&w, 0);
        assert!(!outcome.passed);
        assert!(outcome.detail.contains("no completed translation window"));
    }
}
