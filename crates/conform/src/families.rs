//! Conformance for kernelgen-generated families.
//!
//! Every variant the generator emits runs through the same differential
//! oracle as the hand-written and fuzzed cases: translatable variants
//! get the full gold/plain/liquid/native cross-check at every width,
//! untranslatable idioms (histogram, scatter, gather, non-unit stride)
//! get the abort-never-mistranslate check against their expected tag.
//! `liquid-simd gen --check` is a thin CLI wrapper over this module.

use liquid_simd::isa::ElemType;
use liquid_simd::run_tasks;
use liquid_simd_kernelgen::{expand_corpus, Payload, Variant};

use crate::oracle::{self, CaseOutcome};

/// Runs one generated variant through the conformance oracle.
#[must_use]
pub fn check_variant(v: &Variant) -> CaseOutcome {
    let mut outcome = match &v.payload {
        Payload::Kernel(w) => {
            // The emitter's reduction accumulator is always named
            // `racc`; an f32 one reassociates under SIMD, so it gets
            // the same relative tolerance legal fuzz cases do.
            let f32_racc_rtol = matches!(w.data.get("racc"), Some(&(ElemType::F32, _)));
            oracle::check_workload(&v.name, w, f32_racc_rtol, false)
        }
        Payload::Asm { src, expected_tag } => {
            oracle::check_untranslatable(&v.name, src, expected_tag)
        }
    };
    outcome.family = v.family.clone();
    outcome
}

/// Checks a whole variant list in parallel (deterministic: results come
/// back in input order regardless of `jobs`).
#[must_use]
pub fn check_variants(variants: &[Variant], jobs: usize) -> Vec<CaseOutcome> {
    run_tasks(jobs, variants.len(), |i| {
        Ok::<_, std::convert::Infallible>(check_variant(&variants[i]))
    })
    .unwrap_or_else(|e| match e {})
}

/// Expands the embedded `bench/families/` corpus and checks every
/// variant. The tuple is `(outcomes, abort coverage over those
/// outcomes)`; sweeps do not run here, so the `external` tag is exempt
/// rather than observed.
///
/// # Panics
/// The embedded corpus is validated by kernelgen's tests; failure to
/// expand means the checked-in corpus is broken.
#[must_use]
pub fn check_corpus(jobs: usize) -> (Vec<CaseOutcome>, crate::AbortCoverage) {
    let variants = expand_corpus().expect("embedded kernelgen corpus must expand");
    let outcomes = check_variants(&variants, jobs);
    let coverage = crate::abort_coverage(&outcomes, false);
    (outcomes, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_variant_per_idiom_class_passes_the_oracle() {
        let variants = expand_corpus().unwrap();
        // First variant of each distinct family = one witness per idiom
        // configuration; the full sweep runs in `gen --check` and CI.
        let mut seen = std::collections::BTreeSet::new();
        let picks: Vec<&Variant> = variants
            .iter()
            .filter(|v| seen.insert(v.family.clone()))
            .collect();
        assert!(picks.len() >= 8, "corpus families: {}", picks.len());
        for v in picks {
            let o = check_variant(v);
            assert!(o.passed, "{}: {}", o.name, o.detail);
            assert_eq!(o.family, v.family);
        }
    }
}
