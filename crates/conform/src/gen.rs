//! Case generation: seeded random loop specs.
//!
//! Every conformance case is first materialised as a *spec* — a small,
//! serialisable description of either a random-but-valid vectorizable
//! kernel ([`LegalSpec`]) or a deliberately untranslatable assembly region
//! ([`IllegalSpec`]). Specs, not programs, are the unit of shrinking and
//! corpus persistence: they round-trip through the corpus text format and
//! rebuild the exact same workload from their embedded data seed.

use liquid_simd::{ArrayBuilder, CompileError, Kernel, KernelBuilder, ReduceInit, Workload};
use liquid_simd_compiler::NodeId;
use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp, SUPPORTED_WIDTHS};
use liquid_simd_workloads::util::XorShift64;

/// One generated conformance case.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseSpec {
    /// A random valid kernel: every pipeline must agree.
    Legal(LegalSpec),
    /// A random untranslatable region: translation must abort, never
    /// mistranslate, and scalar fallback must stay correct.
    Illegal(IllegalSpec),
}

impl CaseSpec {
    /// The case's name (unique within one conform run).
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            CaseSpec::Legal(s) => &s.name,
            CaseSpec::Illegal(s) => &s.name,
        }
    }

    /// `"legal"` or `"illegal"`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            CaseSpec::Legal(_) => "legal",
            CaseSpec::Illegal(_) => "illegal",
        }
    }
}

/// One input array of a legal case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputSpec {
    /// Zero-extended (unsigned) load; only meaningful for sub-word ints.
    pub unsigned: bool,
    /// Optional load-side permutation.
    pub perm: Option<PermKind>,
}

/// The right-hand side of one op in a legal case's dataflow chain.
#[derive(Clone, Debug, PartialEq)]
pub enum Rhs {
    /// Scalar immediate (integer elements only).
    Imm(i32),
    /// Broadcast integer constant pattern (`cnst`-style).
    ConstI(Vec<i64>),
    /// Broadcast float constant pattern.
    ConstF(Vec<f32>),
    /// A previously computed value (index into the value list).
    Value(usize),
}

/// One element-wise op appended to the value list.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSpec {
    /// The vector ALU operation.
    pub op: VAluOp,
    /// Left operand: index into the value list.
    pub a: usize,
    /// Right operand.
    pub rhs: Rhs,
}

/// An optional reduction output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceSpec {
    /// The reduction operator (init is always 0 / 0.0).
    pub op: RedOp,
    /// Reduced value: index into the value list.
    pub target: usize,
}

/// A random-but-valid vectorizable kernel, described shrinkably.
///
/// The value list is: inputs first (indices `0..inputs.len()`), then one
/// value per op, then — if present — the mid-dataflow permutation of the
/// last value. The kernel always stores the final value to `out`.
#[derive(Clone, Debug, PartialEq)]
pub struct LegalSpec {
    /// Case name.
    pub name: String,
    /// Trip count (a positive multiple of 16).
    pub trip: u32,
    /// Driver repetitions.
    pub reps: u32,
    /// Element type of inputs and outputs.
    pub elem: ElemType,
    /// Input arrays `in0..inN`.
    pub inputs: Vec<InputSpec>,
    /// Dataflow chain.
    pub ops: Vec<OpSpec>,
    /// Mid-dataflow permutation of the last value (forces fission).
    pub mid_perm: Option<PermKind>,
    /// Optional reduction into `racc`.
    pub reduce: Option<ReduceSpec>,
    /// Seeds the deterministic input data.
    pub data_seed: u64,
    /// Replay with an external abort injected at the last retired
    /// instruction of the first translation window (regression shape for
    /// abort-at-last-instruction).
    pub inject_last: bool,
}

impl LegalSpec {
    /// Number of values in the value list.
    #[must_use]
    pub fn value_count(&self) -> usize {
        self.inputs.len() + self.ops.len() + usize::from(self.mid_perm.is_some())
    }

    /// Builds the concrete workload this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the spec describes an invalid kernel
    /// (possible for hand-edited corpus files; generated specs are valid
    /// by construction).
    pub fn to_workload(&self) -> Result<Workload, CompileError> {
        let float = self.elem == ElemType::F32;
        let mut k = KernelBuilder::new("conform", self.trip);
        let mut data = ArrayBuilder::new();
        let mut rng = XorShift64::new(self.data_seed);
        let mut values = Vec::new();

        for (i, input) in self.inputs.iter().enumerate() {
            let name = format!("in{i}");
            let id = match input.perm {
                Some(p) => k.load_perm(&name, self.elem, p),
                None if input.unsigned && !float => k.load_u(&name, self.elem),
                None => k.load(&name, self.elem),
            };
            values.push(id);
            data = if float {
                let v: Vec<f32> = (0..self.trip).map(|_| rng.range_f32(-8.0, 8.0)).collect();
                data.f32(&name, v)
            } else {
                let hi = match self.elem {
                    ElemType::I8 => 127,
                    ElemType::I16 => 2000,
                    _ => 100_000,
                };
                let v: Vec<i64> = (0..self.trip).map(|_| rng.range_i64(-hi, hi)).collect();
                data.int(&name, self.elem, v)
            };
        }

        let value_of = |values: &[NodeId], idx: usize| {
            values
                .get(idx)
                .copied()
                .ok_or_else(|| CompileError::Invalid {
                    kernel: "conform".to_string(),
                    reason: format!("spec references value v{idx} which does not exist"),
                })
        };

        for op in &self.ops {
            let a = value_of(&values, op.a)?;
            let id = match &op.rhs {
                Rhs::Imm(imm) => k.bin_imm(op.op, a, *imm),
                Rhs::ConstI(pat) => {
                    let c = k.constv(self.elem, pat.clone());
                    k.bin(op.op, a, c)
                }
                Rhs::ConstF(pat) => {
                    let c = k.constf(pat.clone());
                    k.bin(op.op, a, c)
                }
                Rhs::Value(b) => {
                    let b = value_of(&values, *b)?;
                    k.bin(op.op, a, b)
                }
            };
            values.push(id);
        }

        if let Some(kind) = self.mid_perm {
            let a = *values.last().expect("at least one input");
            values.push(k.perm(kind, a));
        }

        let out = *values.last().expect("at least one input");
        k.store("out", out);
        data = data.zeroed("out", self.elem, self.trip as usize);
        if let Some(r) = self.reduce {
            let target = value_of(&values, r.target)?;
            if float {
                k.reduce(r.op, target, "racc", ReduceInit::F32(0.0));
            } else {
                k.reduce(r.op, target, "racc", ReduceInit::Int(0));
            }
            data = data.zeroed("racc", if float { ElemType::F32 } else { ElemType::I32 }, 1);
        }

        let kernel: Kernel = k.build()?;
        Ok(Workload::new(
            &self.name,
            vec![kernel],
            data.build(),
            self.reps,
        ))
    }

    /// Fixed sweep workload: a saturating `i8` add, exercising the
    /// value-clamping microcode path. Single rep so an aborted translation
    /// can never be retried (decisive for the no-partial-entry check).
    #[must_use]
    pub fn sweep_sat() -> LegalSpec {
        LegalSpec {
            name: "sweep_sat".to_string(),
            trip: 16,
            reps: 1,
            elem: ElemType::I8,
            inputs: vec![InputSpec {
                unsigned: false,
                perm: None,
            }],
            ops: vec![OpSpec {
                op: VAluOp::SSatAdd,
                a: 0,
                rhs: Rhs::Imm(100),
            }],
            mid_perm: None,
            reduce: None,
            data_seed: 0x05EE_D5A7,
            inject_last: false,
        }
    }

    /// Fixed sweep workload: an `i32` multiply feeding a sum reduction,
    /// exercising the reduction-epilogue microcode path. Single rep.
    #[must_use]
    pub fn sweep_red() -> LegalSpec {
        LegalSpec {
            name: "sweep_red".to_string(),
            trip: 16,
            reps: 1,
            elem: ElemType::I32,
            inputs: vec![InputSpec {
                unsigned: false,
                perm: None,
            }],
            ops: vec![OpSpec {
                op: VAluOp::Mul,
                a: 0,
                rhs: Rhs::Imm(3),
            }],
            mid_perm: None,
            reduce: Some(ReduceSpec {
                op: RedOp::Sum,
                target: 1,
            }),
            data_seed: 0x5EED_12ED,
            inject_last: false,
        }
    }
}

/// The untranslatable-region families, each modelled on one abort rule of
/// the paper's translator (§3.3): the translation must abort — with the
/// family's tag — and the scalar fallback must stay bit-correct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IllegalKind {
    /// Induction step other than 1 (non-affine for the translator).
    Strided {
        /// The induction increment (≥ 2).
        stride: u32,
    },
    /// A loaded value used directly as a memory index (the VTBL class).
    RuntimePermute,
    /// A scalar (non-induction-indexed) store inside the loop.
    ScalarStore,
    /// An offset array that structurally looks like a permutation but
    /// matches no CAM entry at any supported width.
    CamMiss {
        /// 16 per-element offsets; `i + offsets[i]` stays in `0..16`.
        offsets: Vec<i32>,
    },
    /// A straight-line body exceeding the 64-uop microcode entry.
    Oversized {
        /// Number of filler `add` instructions (> 64).
        adds: u32,
    },
    /// A nested call inside the outlined region.
    NestedCall,
    /// A straight-line region with no loop at all.
    NoLoop,
    /// A loop whose trip count is not a multiple of any vector width.
    TripOdd {
        /// The (odd) trip count.
        trip: u32,
    },
    /// A two-counter loop: the induction's bound compare names one
    /// count while a separate scalar counter actually exits the loop,
    /// so the recorded bound disagrees with the observed trip.
    BoundDrift,
    /// A gather whose offsets exceed the hardware value tracker's
    /// 12-bit signed range, overflowing the offset CAM field.
    WideOffset {
        /// The out-of-range offset (|offset| ≥ 2048).
        offset: i32,
    },
    /// More simultaneously-live vector values than the 16 hardware
    /// vector registers.
    ManyLive,
    /// A predicated ALU op inside the loop body — the partial decoder
    /// only recognises unconditional data processing.
    CondAlu,
}

impl IllegalKind {
    /// The translator abort tag this family must raise.
    #[must_use]
    pub fn expected_tag(&self) -> &'static str {
        match self {
            IllegalKind::Strided { .. } => "unsupported-shape",
            IllegalKind::RuntimePermute => "runtime-indexed-permute",
            IllegalKind::ScalarStore => "scalar-store",
            IllegalKind::CamMiss { .. } => "cam-miss",
            IllegalKind::Oversized { .. } => "too-many-uops",
            IllegalKind::NestedCall => "nested-call",
            IllegalKind::NoLoop => "no-loop",
            IllegalKind::TripOdd { .. } => "trip-not-multiple",
            IllegalKind::BoundDrift => "bound-mismatch",
            IllegalKind::WideOffset { .. } => "value-too-wide",
            IllegalKind::ManyLive => "register-pressure",
            IllegalKind::CondAlu => "unsupported-opcode",
        }
    }

    /// The family's corpus keyword.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            IllegalKind::Strided { .. } => "strided",
            IllegalKind::RuntimePermute => "runtime-permute",
            IllegalKind::ScalarStore => "scalar-store",
            IllegalKind::CamMiss { .. } => "cam-miss",
            IllegalKind::Oversized { .. } => "oversized",
            IllegalKind::NestedCall => "nested-call",
            IllegalKind::NoLoop => "no-loop",
            IllegalKind::TripOdd { .. } => "trip-odd",
            IllegalKind::BoundDrift => "bound-drift",
            IllegalKind::WideOffset { .. } => "wide-offset",
            IllegalKind::ManyLive => "many-live",
            IllegalKind::CondAlu => "cond-alu",
        }
    }

    /// Every family, instantiated with canonical parameters — used by
    /// `coverage_specs` and the family tests.
    #[must_use]
    pub fn all_canonical() -> Vec<IllegalKind> {
        vec![
            IllegalKind::Strided { stride: 2 },
            IllegalKind::RuntimePermute,
            IllegalKind::ScalarStore,
            IllegalKind::CamMiss {
                offsets: (0..ILLEGAL_TRIP).map(|i| [0, 2, -1, -1][i % 4]).collect(),
            },
            IllegalKind::Oversized { adds: 70 },
            IllegalKind::NestedCall,
            IllegalKind::NoLoop,
            IllegalKind::TripOdd { trip: 17 },
            IllegalKind::BoundDrift,
            IllegalKind::WideOffset { offset: 2500 },
            IllegalKind::ManyLive,
            IllegalKind::CondAlu,
        ]
    }
}

/// A deliberately untranslatable region, emitted as assembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IllegalSpec {
    /// Case name.
    pub name: String,
    /// Which abort family.
    pub kind: IllegalKind,
    /// Seeds the deterministic data arrays.
    pub data_seed: u64,
}

/// Trip count of every illegal region (one hardware-maximal vector).
pub const ILLEGAL_TRIP: usize = 16;

fn data_line(name: &str, values: &[i64]) -> String {
    let body: Vec<String> = values.iter().map(ToString::to_string).collect();
    format!(".i32 {name}: {}\n", body.join(", "))
}

impl IllegalSpec {
    /// Renders the region as assembly source (a `main` that `bl.v`-calls
    /// the region once, then halts).
    #[must_use]
    pub fn to_asm(&self) -> String {
        let mut rng = XorShift64::new(self.data_seed);
        let a: Vec<i64> = (0..ILLEGAL_TRIP).map(|_| rng.range_i64(-50, 50)).collect();
        let zero = vec![0i64; ILLEGAL_TRIP];
        match &self.kind {
            IllegalKind::Strided { stride } => format!(
                ".data\n{}\n.text\nmain:\n    bl.v strided\n    halt\nstrided:\n    mov r0, #0\ntop:\n    ldw r1, [A + r0]\n    add r1, r1, #1\n    stw [A + r0], r1\n    add r0, r0, #{stride}\n    cmp r0, #16\n    blt top\n    ret\n",
                data_line("A", &a),
            ),
            IllegalKind::RuntimePermute => {
                // A data-dependent gather: indices come from memory, so the
                // translator cannot prove them affine in the induction.
                let idx: Vec<i64> = (0..ILLEGAL_TRIP as i64)
                    .map(|i| (i ^ rng.range_i64(1, 4)) & 15)
                    .collect();
                format!(
                    ".data\n{}{}{}\n.text\nmain:\n    bl.v gather\n    halt\ngather:\n    mov r0, #0\ntop:\n    ldw r1, [idx + r0]\n    ldw r2, [A + r1]\n    stw [B + r0], r2\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                    data_line("idx", &idx),
                    data_line("A", &a),
                    data_line("B", &zero),
                )
            }
            IllegalKind::ScalarStore => format!(
                ".data\n{}\n.text\nmain:\n    bl.v splat\n    halt\nsplat:\n    mov r1, #{}\n    mov r0, #0\ntop:\n    stw [A + r0], r1\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                data_line("A", &zero),
                rng.range_i64(1, 100),
            ),
            IllegalKind::CamMiss { offsets } => {
                let offs: Vec<i64> = offsets.iter().map(|&o| i64::from(o)).collect();
                format!(
                    ".data\n{}{}{}\n.text\nmain:\n    bl.v weird\n    halt\nweird:\n    mov r0, #0\ntop:\n    ldw r1, [off + r0]\n    add r1, r0, r1\n    ldw r2, [A + r1]\n    stw [B + r0], r2\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                    data_line("off", &offs),
                    data_line("A", &a),
                    data_line("B", &zero),
                )
            }
            IllegalKind::Oversized { adds } => {
                let mut body = String::new();
                for _ in 0..*adds {
                    body.push_str("    add r1, r1, #1\n");
                }
                format!(
                    ".data\n{}\n.text\nmain:\n    bl.v huge\n    halt\nhuge:\n    mov r0, #0\ntop:\n    ldw r1, [A + r0]\n{body}    stw [A + r0], r1\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                    data_line("A", &a),
                )
            }
            IllegalKind::NestedCall => format!(
                ".data\n{}\n.text\nmain:\n    bl.v outer\n    halt\nouter:\n    mov r13, r14\n    mov r0, #0\ntop:\n    bl helper\n    stw [A + r0], r1\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    mov r14, r13\n    ret\nhelper:\n    ldw r1, [A + r0]\n    add r1, r1, #1\n    ret\n",
                data_line("A", &a),
            ),
            IllegalKind::NoLoop => format!(
                ".data\n{}\n.text\nmain:\n    bl.v straight\n    halt\nstraight:\n    mov r1, #5\n    add r1, r1, #7\n    ret\n",
                data_line("A", &a),
            ),
            IllegalKind::TripOdd { trip } => {
                let n = *trip as usize;
                let odd: Vec<i64> = (0..n).map(|_| rng.range_i64(-50, 50)).collect();
                format!(
                    ".data\n{}\n.text\nmain:\n    bl.v oddloop\n    halt\noddloop:\n    mov r0, #0\ntop:\n    ldw r1, [A + r0]\n    add r1, r1, #1\n    stw [A + r0], r1\n    add r0, r0, #1\n    cmp r0, #{trip}\n    blt top\n    ret\n",
                    data_line("A", &odd),
                )
            }
            IllegalKind::BoundDrift => format!(
                // The induction compare claims 64 iterations; the r2
                // counter exits after 16. The bound the translator
                // records (64) disagrees with the trip it observes (16).
                ".data\n{}{}\n.text\nmain:\n    bl.v drift\n    halt\ndrift:\n    mov r2, #0\n    mov r0, #0\ntop:\n    ldw r1, [A + r0]\n    add r1, r1, #1\n    stw [B + r0], r1\n    add r0, r0, #1\n    cmp r0, #64\n    add r2, r2, #1\n    cmp r2, #16\n    blt top\n    ret\n",
                data_line("A", &a),
                data_line("B", &zero),
            ),
            IllegalKind::WideOffset { offset } => {
                // One offset beyond the 12-bit tracker range; the gather
                // target is sized so the scalar reference stays in bounds.
                let off: Vec<i64> = (0..ILLEGAL_TRIP)
                    .map(|i| if i == 1 { i64::from(*offset) } else { 0 })
                    .collect();
                let alen = ILLEGAL_TRIP + offset.unsigned_abs() as usize + 4;
                let big: Vec<i64> = (0..alen).map(|_| rng.range_i64(-50, 50)).collect();
                format!(
                    ".data\n{}{}{}\n.text\nmain:\n    bl.v wide\n    halt\nwide:\n    mov r0, #0\ntop:\n    ldw r1, [off + r0]\n    add r1, r0, r1\n    ldw r2, [A + r1]\n    stw [B + r0], r2\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                    data_line("off", &off),
                    data_line("A", &big),
                    data_line("B", &zero),
                )
            }
            IllegalKind::ManyLive => {
                // 13 int + 4 fp loads = 17 live vector values, one more
                // than the hardware register file (r14/r15 stay clear
                // for the link register).
                let mut data = String::new();
                for i in 0..13 {
                    let v: Vec<i64> = (0..ILLEGAL_TRIP).map(|_| rng.range_i64(-50, 50)).collect();
                    data.push_str(&data_line(&format!("A{i}"), &v));
                }
                for i in 0..4 {
                    let v: Vec<String> = (0..ILLEGAL_TRIP)
                        .map(|_| format!("{:?}", (rng.range_i64(-400, 400) as f32) / 100.0))
                        .collect();
                    data.push_str(&format!(".f32 F{i}: {}\n", v.join(", ")));
                }
                data.push_str(&data_line("B", &zero));
                let mut body = String::new();
                for i in 0..13 {
                    body.push_str(&format!("    ldw r{}, [A{i} + r0]\n", i + 1));
                }
                for i in 0..4 {
                    body.push_str(&format!("    ldf f{i}, [F{i} + r0]\n"));
                }
                format!(
                    ".data\n{data}\n.text\nmain:\n    bl.v pressure\n    halt\npressure:\n    mov r0, #0\ntop:\n{body}    stw [B + r0], r1\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                )
            }
            IllegalKind::CondAlu => format!(
                // `addge` is a no-op either way (adds zero), but the
                // partial decoder only accepts unconditional data
                // processing inside the body.
                ".data\n{}{}\n.text\nmain:\n    bl.v predicated\n    halt\npredicated:\n    mov r0, #0\ntop:\n    ldw r1, [A + r0]\n    add r1, r1, #3\n    addge r1, r1, #0\n    stw [B + r0], r1\n    add r0, r0, #1\n    cmp r0, #16\n    blt top\n    ret\n",
                data_line("A", &a),
                data_line("B", &zero),
            ),
        }
    }
}

/// One deterministic spec per illegal family, appended to every
/// conform run so the `abort_coverage` section always has a witness
/// for each family regardless of what the random mix drew.
#[must_use]
pub fn coverage_specs() -> Vec<IllegalSpec> {
    IllegalKind::all_canonical()
        .into_iter()
        .enumerate()
        .map(|(i, kind)| IllegalSpec {
            name: format!("cov_{}", kind.family()),
            kind,
            data_seed: 0xC0DE_0000 + i as u64,
        })
        .collect()
}

/// `true` with probability `p`.
fn chance(rng: &mut XorShift64, p: f64) -> bool {
    rng.next_f64() < p
}

fn random_perm(rng: &mut XorShift64) -> PermKind {
    let block = [2u8, 4, 8, 16][rng.range_usize(0, 4)];
    match rng.range_usize(0, 3) {
        0 => PermKind::Bfly { block },
        1 => PermKind::Rev { block },
        _ => PermKind::Rot {
            block,
            amt: rng.range_i64(1, i64::from(block)) as u8,
        },
    }
}

/// Offsets that structurally resemble a permutation but miss the CAM at
/// every supported width. `i + offsets[i]` always stays inside `0..16`.
fn cam_missing_offsets(rng: &mut XorShift64) -> Vec<i32> {
    for _ in 0..64 {
        let offsets: Vec<i32> = (0..ILLEGAL_TRIP)
            .map(|i| {
                let lo = -(i.min(3) as i32);
                let hi = (ILLEGAL_TRIP - 1 - i).min(3) as i32;
                rng.range_i64(i64::from(lo), i64::from(hi) + 1) as i32
            })
            .collect();
        let misses_everywhere = SUPPORTED_WIDTHS
            .iter()
            .all(|&w| PermKind::match_offsets(&offsets, w).is_none());
        if misses_everywhere {
            return offsets;
        }
    }
    // Deterministic fallback: the known-miss pattern from the abort tests.
    (0..ILLEGAL_TRIP).map(|i| [0, 2, -1, -1][i % 4]).collect()
}

/// Generates case `index` of a conform run seeded with `seed`. Roughly one
/// case in four is illegal; the rest are random valid kernels.
#[must_use]
pub fn generate_case(seed: u64, index: u64) -> CaseSpec {
    // Decorrelate per-case streams (same mixer as the property suite).
    let case_seed = (seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0xA5A5);
    let mut rng = XorShift64::new(case_seed);
    let data_seed = rng.next_u64();

    if rng.range_usize(0, 4) == 0 {
        let kind = match rng.range_usize(0, 12) {
            0 => IllegalKind::Strided {
                stride: rng.range_i64(2, 5) as u32,
            },
            1 => IllegalKind::RuntimePermute,
            2 => IllegalKind::ScalarStore,
            3 => IllegalKind::CamMiss {
                offsets: cam_missing_offsets(&mut rng),
            },
            4 => IllegalKind::Oversized {
                adds: rng.range_i64(66, 96) as u32,
            },
            5 => IllegalKind::NestedCall,
            6 => IllegalKind::NoLoop,
            7 => IllegalKind::TripOdd {
                trip: 2 * rng.range_i64(8, 16) as u32 + 1,
            },
            8 => IllegalKind::BoundDrift,
            9 => IllegalKind::WideOffset {
                offset: rng.range_i64(2100, 3000) as i32,
            },
            10 => IllegalKind::ManyLive,
            _ => IllegalKind::CondAlu,
        };
        return CaseSpec::Illegal(IllegalSpec {
            name: format!("case{index}_{}", kind.family()),
            kind,
            data_seed,
        });
    }

    let elem = [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::F32][rng.range_usize(0, 4)];
    let float = elem == ElemType::F32;
    let trip = [16u32, 32][rng.range_usize(0, 2)];
    let reps = [1u32, 2][rng.range_usize(0, 2)];

    let inputs: Vec<InputSpec> = (0..rng.range_usize(1, 4))
        .map(|_| {
            let perm = chance(&mut rng, 0.3).then(|| random_perm(&mut rng));
            InputSpec {
                unsigned: perm.is_none() && !float && chance(&mut rng, 0.5),
                perm,
            }
        })
        .collect();

    let int_ops = [
        VAluOp::Add,
        VAluOp::Sub,
        VAluOp::Mul,
        VAluOp::And,
        VAluOp::Orr,
        VAluOp::Eor,
        VAluOp::Min,
        VAluOp::Max,
        VAluOp::Lsr,
        VAluOp::Asr,
    ];
    let sat_ops = [
        VAluOp::SatAdd,
        VAluOp::SatSub,
        VAluOp::SSatAdd,
        VAluOp::SSatSub,
    ];
    let fp_ops = [
        VAluOp::Add,
        VAluOp::Sub,
        VAluOp::Mul,
        VAluOp::Min,
        VAluOp::Max,
    ];

    let mut value_count = inputs.len();
    let mut ops = Vec::new();
    for _ in 0..rng.range_usize(2, 9) {
        let a = rng.range_usize(0, value_count);
        let op = if float {
            fp_ops[rng.range_usize(0, fp_ops.len())]
        } else if matches!(elem, ElemType::I8 | ElemType::I16) && chance(&mut rng, 0.25) {
            sat_ops[rng.range_usize(0, sat_ops.len())]
        } else {
            int_ops[rng.range_usize(0, int_ops.len())]
        };
        let rhs = match rng.range_usize(0, 3) {
            0 if !float => Rhs::Imm(rng.range_i64(-100, 100) as i32),
            1 => {
                let len = [1usize, 2, 4][rng.range_usize(0, 3)];
                if float {
                    Rhs::ConstF((0..len).map(|_| rng.range_f32(-2.0, 2.0)).collect())
                } else {
                    Rhs::ConstI((0..len).map(|_| rng.range_i64(-60, 60)).collect())
                }
            }
            _ => Rhs::Value(rng.range_usize(0, value_count)),
        };
        ops.push(OpSpec { op, a, rhs });
        value_count += 1;
    }

    let mid_perm = chance(&mut rng, 0.3).then_some(PermKind::Bfly { block: 4 });
    if mid_perm.is_some() {
        value_count += 1;
    }
    let reduce = chance(&mut rng, 0.5).then(|| ReduceSpec {
        op: [RedOp::Min, RedOp::Max, RedOp::Sum][rng.range_usize(0, 3)],
        target: rng.range_usize(0, value_count),
    });

    CaseSpec::Legal(LegalSpec {
        name: format!("case{index}_legal"),
        trip,
        reps,
        elem,
        inputs,
        ops,
        mid_perm,
        reduce,
        data_seed,
        inject_last: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for i in 0..32 {
            let a = generate_case(0xC0FFEE, i);
            let b = generate_case(0xC0FFEE, i);
            assert_eq!(a, b, "same seed and index must regenerate identically");
            if let CaseSpec::Legal(spec) = &a {
                spec.to_workload().expect("generated legal specs build");
            }
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = generate_case(1, 0);
        let b = generate_case(2, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn cam_miss_offsets_miss_at_every_width() {
        let mut rng = XorShift64::new(7);
        for _ in 0..16 {
            let offs = cam_missing_offsets(&mut rng);
            assert_eq!(offs.len(), ILLEGAL_TRIP);
            for (i, &o) in offs.iter().enumerate() {
                let dst = i as i32 + o;
                assert!((0..16).contains(&dst), "offset escapes the array");
            }
            for w in SUPPORTED_WIDTHS {
                assert!(PermKind::match_offsets(&offs, w).is_none());
            }
        }
    }

    #[test]
    fn mix_contains_both_populations() {
        let (mut legal, mut illegal) = (0, 0);
        for i in 0..64 {
            match generate_case(99, i) {
                CaseSpec::Legal(_) => legal += 1,
                CaseSpec::Illegal(_) => illegal += 1,
            }
        }
        assert!(
            legal > 0 && illegal > 0,
            "{legal} legal / {illegal} illegal"
        );
    }
}
