//! Greedy spec minimisation for failing cases.
//!
//! When a generated case fails the oracle, the raw spec is usually far
//! bigger than the actual trigger. The shrinker repeatedly tries
//! structure-removing transformations — fewer reps, the minimal trip,
//! dropped ops and inputs, simplified operands — keeping a candidate only
//! if it (a) still *builds* and (b) still *fails* the caller's predicate.
//! Every accepted candidate restarts the pass list, so the result is a
//! local fixpoint: no single transformation can shrink it further.
//!
//! The shrinker is deliberately ignorant of *why* the case fails: the
//! predicate is a closure, so the same machinery minimises oracle
//! mismatches, abort-sweep failures, and hand-fed reproductions alike.

use crate::gen::{LegalSpec, OpSpec, Rhs};

/// One attempted transformation: returns the shrunk candidate, or `None`
/// when the transformation does not apply to this spec.
type Pass = fn(&LegalSpec) -> Option<LegalSpec>;

fn reps_to_one(s: &LegalSpec) -> Option<LegalSpec> {
    (s.reps > 1).then(|| LegalSpec {
        reps: 1,
        ..s.clone()
    })
}

fn trip_to_min(s: &LegalSpec) -> Option<LegalSpec> {
    (s.trip > 16).then(|| LegalSpec {
        trip: 16,
        ..s.clone()
    })
}

fn drop_reduce(s: &LegalSpec) -> Option<LegalSpec> {
    s.reduce.is_some().then(|| LegalSpec {
        reduce: None,
        ..s.clone()
    })
}

fn drop_mid_perm(s: &LegalSpec) -> Option<LegalSpec> {
    s.mid_perm.is_some().then(|| LegalSpec {
        mid_perm: None,
        ..s.clone()
    })
}

fn clear_input_decorations(s: &LegalSpec) -> Option<LegalSpec> {
    if s.inputs.iter().all(|i| !i.unsigned && i.perm.is_none()) {
        return None;
    }
    let mut c = s.clone();
    for input in &mut c.inputs {
        input.unsigned = false;
        input.perm = None;
    }
    Some(c)
}

/// Rewrites a value reference after the value at global index `g` was
/// removed: references to `g` become `to`, later references shift down.
fn remap(r: usize, g: usize, to: usize) -> usize {
    use std::cmp::Ordering;
    match r.cmp(&g) {
        Ordering::Less => r,
        Ordering::Equal => to,
        Ordering::Greater => r - 1,
    }
}

fn remap_spec(c: &mut LegalSpec, g: usize, to: usize) {
    for op in &mut c.ops {
        op.a = remap(op.a, g, to);
        if let Rhs::Value(b) = &mut op.rhs {
            *b = remap(*b, g, to);
        }
    }
    if let Some(r) = &mut c.reduce {
        r.target = remap(r.target, g, to);
    }
}

/// Drops op `j`, redirecting every reference to its value to the op's own
/// left operand (the natural "splice out of the chain" rewrite).
fn drop_op(s: &LegalSpec, j: usize) -> Option<LegalSpec> {
    if j >= s.ops.len() {
        return None;
    }
    let g = s.inputs.len() + j;
    let to = s.ops[j].a;
    let mut c = s.clone();
    c.ops.remove(j);
    remap_spec(&mut c, g, to);
    Some(c)
}

/// Drops input `j` (only when more than one remains), redirecting
/// references to another input.
fn drop_input(s: &LegalSpec, j: usize) -> Option<LegalSpec> {
    if s.inputs.len() < 2 || j >= s.inputs.len() {
        return None;
    }
    let to = usize::from(j == 0);
    let mut c = s.clone();
    c.inputs.remove(j);
    remap_spec(&mut c, j, to);
    Some(c)
}

/// Simplifies op `j`'s right-hand side one notch: constant patterns to a
/// single element, value references to `imm 1` (integer kernels only).
fn simplify_rhs(s: &LegalSpec, j: usize) -> Option<LegalSpec> {
    let op = s.ops.get(j)?;
    let rhs = match &op.rhs {
        Rhs::ConstI(p) if p.len() > 1 => Rhs::ConstI(vec![p[0]]),
        Rhs::ConstF(p) if p.len() > 1 => Rhs::ConstF(vec![p[0]]),
        Rhs::Value(_) if s.elem != liquid_simd_isa::ElemType::F32 => Rhs::Imm(1),
        _ => return None,
    };
    let mut c = s.clone();
    c.ops[j] = OpSpec { rhs, ..op.clone() };
    Some(c)
}

/// Accepts a candidate only if it still describes a buildable workload and
/// still fails the predicate.
fn still_fails(c: &LegalSpec, fails: &dyn Fn(&LegalSpec) -> bool) -> bool {
    c.to_workload().is_ok() && fails(c)
}

/// Minimises `spec` under the failure predicate. `fails(spec)` must be
/// `true` on entry (a non-failing spec is returned unchanged). The
/// predicate is re-run on every candidate, so keep it deterministic.
#[must_use]
pub fn shrink_legal(spec: &LegalSpec, fails: &dyn Fn(&LegalSpec) -> bool) -> LegalSpec {
    let mut cur = spec.clone();
    if !fails(&cur) {
        return cur;
    }

    let simple_passes: [Pass; 5] = [
        reps_to_one,
        trip_to_min,
        drop_reduce,
        drop_mid_perm,
        clear_input_decorations,
    ];

    'restart: loop {
        for pass in simple_passes {
            if let Some(c) = pass(&cur) {
                if still_fails(&c, fails) {
                    cur = c;
                    continue 'restart;
                }
            }
        }
        // Indexed passes, widest surviving index first so the chain tail
        // (the stored value) is preferred for removal.
        for j in (0..cur.ops.len()).rev() {
            if let Some(c) = drop_op(&cur, j) {
                if still_fails(&c, fails) {
                    cur = c;
                    continue 'restart;
                }
            }
            if let Some(c) = simplify_rhs(&cur, j) {
                if still_fails(&c, fails) {
                    cur = c;
                    continue 'restart;
                }
            }
        }
        for j in (0..cur.inputs.len()).rev() {
            if let Some(c) = drop_input(&cur, j) {
                if still_fails(&c, fails) {
                    cur = c;
                    continue 'restart;
                }
            }
        }
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, CaseSpec, InputSpec, ReduceSpec};
    use liquid_simd_isa::{ElemType, RedOp, VAluOp};

    fn fat_spec() -> LegalSpec {
        LegalSpec {
            name: "fat".to_string(),
            trip: 32,
            reps: 2,
            elem: ElemType::I16,
            inputs: vec![
                InputSpec {
                    unsigned: true,
                    perm: None,
                },
                InputSpec {
                    unsigned: false,
                    perm: None,
                },
            ],
            ops: vec![
                OpSpec {
                    op: VAluOp::Add,
                    a: 0,
                    rhs: Rhs::Value(1),
                },
                OpSpec {
                    op: VAluOp::SatAdd,
                    a: 2,
                    rhs: Rhs::Imm(90),
                },
                OpSpec {
                    op: VAluOp::Mul,
                    a: 3,
                    rhs: Rhs::ConstI(vec![3, 5]),
                },
            ],
            mid_perm: None,
            reduce: Some(ReduceSpec {
                op: RedOp::Sum,
                target: 4,
            }),
            data_seed: 11,
            inject_last: false,
        }
    }

    #[test]
    fn shrinks_to_minimal_saturating_core() {
        // "Fails" whenever a saturating op is present: the shrinker must
        // strip everything else but keep one.
        let fails = |s: &LegalSpec| {
            s.ops.iter().any(|o| {
                matches!(
                    o.op,
                    VAluOp::SatAdd | VAluOp::SatSub | VAluOp::SSatAdd | VAluOp::SSatSub
                )
            })
        };
        let small = shrink_legal(&fat_spec(), &fails);
        assert!(fails(&small));
        assert_eq!(small.reps, 1);
        assert_eq!(small.trip, 16);
        assert!(small.reduce.is_none());
        assert_eq!(small.inputs.len(), 1);
        assert_eq!(small.ops.len(), 1, "only the saturating op survives");
        small.to_workload().expect("shrunk spec still builds");
    }

    #[test]
    fn non_failing_spec_is_untouched() {
        let spec = fat_spec();
        let out = shrink_legal(&spec, &|_| false);
        assert_eq!(out, spec);
    }

    #[test]
    fn shrunk_generated_specs_always_build() {
        // Shrinking must preserve buildability whatever the predicate.
        let fails = |s: &LegalSpec| s.ops.len() > 1 || s.reduce.is_some();
        for i in 0..24 {
            if let CaseSpec::Legal(spec) = generate_case(0xFEED, i) {
                let small = shrink_legal(&spec, &fails);
                small.to_workload().expect("shrunk spec builds");
            }
        }
    }
}
