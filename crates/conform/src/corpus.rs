//! Corpus persistence: the `conform-case-v1` text format.
//!
//! Minimised failing cases are written as small line-oriented text files
//! under `tests/corpus/` so they become permanent regression tests — the
//! tier-1 corpus runner replays every `.case` file through the full
//! oracle on each `cargo test`. The format is deliberately trivial to
//! hand-edit: one `key value` line per field, `#` comments, and `f32`
//! constants stored as IEEE-754 bit patterns so replays are bit-exact.
//!
//! ```text
//! # conform-case-v1
//! name sat_clamp
//! kind legal
//! trip 16
//! reps 1
//! elem i8
//! data-seed 0x5eed5a7
//! input signed
//! op ssatadd v0 imm 100
//! ```

use std::fmt::Write as _;
use std::path::Path;

use liquid_simd_isa::{ElemType, PermKind, RedOp, VAluOp};

use crate::gen::{
    CaseSpec, IllegalKind, IllegalSpec, InputSpec, LegalSpec, OpSpec, ReduceSpec, Rhs,
};

/// Magic first line of every corpus file.
pub const MAGIC: &str = "# conform-case-v1";

/// A corpus parse failure: file (or name) plus reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusError {
    /// Which file or case failed to parse.
    pub what: String,
    /// Why.
    pub reason: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus case `{}`: {}", self.what, self.reason)
    }
}

impl std::error::Error for CorpusError {}

fn op_name(op: VAluOp) -> &'static str {
    match op {
        VAluOp::Add => "add",
        VAluOp::Sub => "sub",
        VAluOp::Mul => "mul",
        VAluOp::Div => "div",
        VAluOp::And => "and",
        VAluOp::Orr => "orr",
        VAluOp::Eor => "eor",
        VAluOp::Min => "min",
        VAluOp::Max => "max",
        VAluOp::SatAdd => "satadd",
        VAluOp::SatSub => "satsub",
        VAluOp::SSatAdd => "ssatadd",
        VAluOp::SSatSub => "ssatsub",
        VAluOp::Lsl => "lsl",
        VAluOp::Lsr => "lsr",
        VAluOp::Asr => "asr",
    }
}

fn op_from_name(s: &str) -> Option<VAluOp> {
    Some(match s {
        "add" => VAluOp::Add,
        "sub" => VAluOp::Sub,
        "mul" => VAluOp::Mul,
        "div" => VAluOp::Div,
        "and" => VAluOp::And,
        "orr" => VAluOp::Orr,
        "eor" => VAluOp::Eor,
        "min" => VAluOp::Min,
        "max" => VAluOp::Max,
        "satadd" => VAluOp::SatAdd,
        "satsub" => VAluOp::SatSub,
        "ssatadd" => VAluOp::SSatAdd,
        "ssatsub" => VAluOp::SSatSub,
        "lsl" => VAluOp::Lsl,
        "lsr" => VAluOp::Lsr,
        "asr" => VAluOp::Asr,
        _ => return None,
    })
}

fn elem_name(e: ElemType) -> &'static str {
    match e {
        ElemType::I8 => "i8",
        ElemType::I16 => "i16",
        ElemType::I32 => "i32",
        ElemType::F32 => "f32",
    }
}

fn elem_from_name(s: &str) -> Option<ElemType> {
    Some(match s {
        "i8" => ElemType::I8,
        "i16" => ElemType::I16,
        "i32" => ElemType::I32,
        "f32" => ElemType::F32,
        _ => return None,
    })
}

fn perm_text(p: PermKind) -> String {
    match p {
        PermKind::Bfly { block } => format!("bfly:{block}"),
        PermKind::Rev { block } => format!("rev:{block}"),
        PermKind::Rot { block, amt } => format!("rot:{block}:{amt}"),
    }
}

fn perm_from_text(s: &str) -> Option<PermKind> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["bfly", b] => Some(PermKind::Bfly {
            block: b.parse().ok()?,
        }),
        ["rev", b] => Some(PermKind::Rev {
            block: b.parse().ok()?,
        }),
        ["rot", b, a] => Some(PermKind::Rot {
            block: b.parse().ok()?,
            amt: a.parse().ok()?,
        }),
        _ => None,
    }
}

fn red_name(r: RedOp) -> &'static str {
    match r {
        RedOp::Sum => "sum",
        RedOp::Min => "min",
        RedOp::Max => "max",
    }
}

fn red_from_name(s: &str) -> Option<RedOp> {
    Some(match s {
        "sum" => RedOp::Sum,
        "min" => RedOp::Min,
        "max" => RedOp::Max,
        _ => return None,
    })
}

/// Serialises a case to `conform-case-v1` text.
#[must_use]
pub fn to_text(case: &CaseSpec) -> String {
    let mut s = String::new();
    s.push_str(MAGIC);
    s.push('\n');
    let _ = writeln!(s, "name {}", case.name());
    let _ = writeln!(s, "kind {}", case.kind());
    match case {
        CaseSpec::Legal(l) => {
            let _ = writeln!(s, "trip {}", l.trip);
            let _ = writeln!(s, "reps {}", l.reps);
            let _ = writeln!(s, "elem {}", elem_name(l.elem));
            let _ = writeln!(s, "data-seed {:#x}", l.data_seed);
            for input in &l.inputs {
                let mut line = String::from("input");
                line.push_str(if input.unsigned {
                    " unsigned"
                } else {
                    " signed"
                });
                if let Some(p) = input.perm {
                    let _ = write!(line, " perm {}", perm_text(p));
                }
                let _ = writeln!(s, "{line}");
            }
            for op in &l.ops {
                let rhs = match &op.rhs {
                    Rhs::Imm(i) => format!("imm {i}"),
                    Rhs::ConstI(p) => format!(
                        "consti {}",
                        p.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                    Rhs::ConstF(p) => format!(
                        "constf {}",
                        p.iter()
                            .map(|f| format!("{:#010x}", f.to_bits()))
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                    Rhs::Value(v) => format!("v{v}"),
                };
                let _ = writeln!(s, "op {} v{} {rhs}", op_name(op.op), op.a);
            }
            if let Some(p) = l.mid_perm {
                let _ = writeln!(s, "mid-perm {}", perm_text(p));
            }
            if let Some(r) = l.reduce {
                let _ = writeln!(s, "reduce {} v{}", red_name(r.op), r.target);
            }
            if l.inject_last {
                s.push_str("inject-last\n");
            }
        }
        CaseSpec::Illegal(i) => {
            let _ = writeln!(s, "data-seed {:#x}", i.data_seed);
            let family = match &i.kind {
                IllegalKind::Strided { stride } => format!("strided {stride}"),
                IllegalKind::Oversized { adds } => format!("oversized {adds}"),
                IllegalKind::TripOdd { trip } => format!("trip-odd {trip}"),
                IllegalKind::WideOffset { offset } => format!("wide-offset {offset}"),
                k => k.family().to_string(),
            };
            let _ = writeln!(s, "family {family}");
            if let IllegalKind::CamMiss { offsets } = &i.kind {
                let _ = writeln!(
                    s,
                    "offsets {}",
                    offsets
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
    }
    s
}

fn parse_u64(what: &str, v: &str) -> Result<u64, CorpusError> {
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.map_err(|_| CorpusError {
        what: what.to_string(),
        reason: format!("bad number `{v}`"),
    })
}

fn parse_vref(what: &str, v: &str) -> Result<usize, CorpusError> {
    v.strip_prefix('v')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| CorpusError {
            what: what.to_string(),
            reason: format!("bad value reference `{v}` (expected vN)"),
        })
}

/// Parses `conform-case-v1` text back into a spec. `what` names the source
/// (file name) for error messages.
///
/// # Errors
///
/// Returns [`CorpusError`] on any malformed line.
pub fn parse(what: &str, text: &str) -> Result<CaseSpec, CorpusError> {
    let err = |reason: String| CorpusError {
        what: what.to_string(),
        reason,
    };
    let mut lines = text.lines().map(str::trim);
    if lines.next() != Some(MAGIC) {
        return Err(err(format!("first line must be `{MAGIC}`")));
    }

    let mut name = None;
    let mut kind = None;
    let mut trip = 16u32;
    let mut reps = 1u32;
    let mut elem = ElemType::I32;
    let mut data_seed = 0u64;
    let mut inputs = Vec::new();
    let mut ops = Vec::new();
    let mut mid_perm = None;
    let mut reduce = None;
    let mut inject_last = false;
    let mut family: Option<String> = None;
    let mut offsets: Option<Vec<i32>> = None;

    for line in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "name" => name = Some(rest.to_string()),
            "kind" => kind = Some(rest.to_string()),
            "trip" => trip = parse_u64(what, rest)? as u32,
            "reps" => reps = parse_u64(what, rest)? as u32,
            "elem" => {
                elem = elem_from_name(rest).ok_or_else(|| err(format!("bad elem `{rest}`")))?;
            }
            "data-seed" => data_seed = parse_u64(what, rest)?,
            "input" => {
                let mut input = InputSpec {
                    unsigned: false,
                    perm: None,
                };
                let mut toks = rest.split_whitespace();
                match toks.next() {
                    Some("unsigned") => input.unsigned = true,
                    Some("signed") | None => {}
                    Some(t) => return Err(err(format!("bad input qualifier `{t}`"))),
                }
                if let Some(t) = toks.next() {
                    if t != "perm" {
                        return Err(err(format!("expected `perm`, got `{t}`")));
                    }
                    let spec = toks.next().ok_or_else(|| err("missing perm spec".into()))?;
                    input.perm = Some(
                        perm_from_text(spec).ok_or_else(|| err(format!("bad perm `{spec}`")))?,
                    );
                }
                inputs.push(input);
            }
            "op" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() < 3 {
                    return Err(err(format!("bad op line `{line}`")));
                }
                let op =
                    op_from_name(toks[0]).ok_or_else(|| err(format!("bad op `{}`", toks[0])))?;
                let a = parse_vref(what, toks[1])?;
                let rhs = match toks[2] {
                    "imm" => {
                        let v = toks.get(3).ok_or_else(|| err("missing imm".into()))?;
                        Rhs::Imm(v.parse().map_err(|_| err(format!("bad imm `{v}`")))?)
                    }
                    "consti" => {
                        let v = toks.get(3).ok_or_else(|| err("missing consti".into()))?;
                        let pat: Result<Vec<i64>, _> = v.split(',').map(str::parse).collect();
                        Rhs::ConstI(pat.map_err(|_| err(format!("bad consti `{v}`")))?)
                    }
                    "constf" => {
                        let v = toks.get(3).ok_or_else(|| err("missing constf".into()))?;
                        let pat: Result<Vec<f32>, CorpusError> = v
                            .split(',')
                            .map(|t| {
                                if let Some(hex) = t.strip_prefix("0x") {
                                    u32::from_str_radix(hex, 16)
                                        .map(f32::from_bits)
                                        .map_err(|_| err(format!("bad constf bits `{t}`")))
                                } else {
                                    t.parse().map_err(|_| err(format!("bad constf `{t}`")))
                                }
                            })
                            .collect();
                        Rhs::ConstF(pat?)
                    }
                    v => Rhs::Value(parse_vref(what, v)?),
                };
                ops.push(OpSpec { op, a, rhs });
            }
            "mid-perm" => {
                mid_perm =
                    Some(perm_from_text(rest).ok_or_else(|| err(format!("bad perm `{rest}`")))?);
            }
            "reduce" => {
                let (r, t) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(format!("bad reduce line `{line}`")))?;
                reduce = Some(ReduceSpec {
                    op: red_from_name(r).ok_or_else(|| err(format!("bad reduction `{r}`")))?,
                    target: parse_vref(what, t.trim())?,
                });
            }
            "inject-last" => inject_last = true,
            "family" => family = Some(rest.to_string()),
            "offsets" => {
                let parsed: Result<Vec<i32>, _> = rest.split(',').map(str::parse).collect();
                offsets = Some(parsed.map_err(|_| err(format!("bad offsets `{rest}`")))?);
            }
            _ => return Err(err(format!("unknown key `{key}`"))),
        }
    }

    let name = name.ok_or_else(|| err("missing `name`".into()))?;
    match kind.as_deref() {
        Some("legal") => {
            if inputs.is_empty() {
                return Err(err("legal case needs at least one input".into()));
            }
            Ok(CaseSpec::Legal(LegalSpec {
                name,
                trip,
                reps,
                elem,
                inputs,
                ops,
                mid_perm,
                reduce,
                data_seed,
                inject_last,
            }))
        }
        Some("illegal") => {
            let family = family.ok_or_else(|| err("illegal case needs `family`".into()))?;
            let (fam, arg) = family.split_once(' ').unwrap_or((family.as_str(), ""));
            let kind = match fam {
                "strided" => IllegalKind::Strided {
                    stride: parse_u64(what, arg)? as u32,
                },
                "runtime-permute" => IllegalKind::RuntimePermute,
                "scalar-store" => IllegalKind::ScalarStore,
                "cam-miss" => IllegalKind::CamMiss {
                    offsets: offsets.ok_or_else(|| err("cam-miss needs `offsets`".into()))?,
                },
                "oversized" => IllegalKind::Oversized {
                    adds: parse_u64(what, arg)? as u32,
                },
                "nested-call" => IllegalKind::NestedCall,
                "no-loop" => IllegalKind::NoLoop,
                "trip-odd" => IllegalKind::TripOdd {
                    trip: parse_u64(what, arg)? as u32,
                },
                "bound-drift" => IllegalKind::BoundDrift,
                "wide-offset" => IllegalKind::WideOffset {
                    offset: arg
                        .parse()
                        .map_err(|_| err(format!("bad offset `{arg}`")))?,
                },
                "many-live" => IllegalKind::ManyLive,
                "cond-alu" => IllegalKind::CondAlu,
                _ => return Err(err(format!("unknown family `{fam}`"))),
            };
            Ok(CaseSpec::Illegal(IllegalSpec {
                name,
                kind,
                data_seed,
            }))
        }
        Some(k) => Err(err(format!("unknown kind `{k}`"))),
        None => Err(err("missing `kind`".into())),
    }
}

/// Loads every `.case` file in `dir`, sorted by file name for determinism.
/// A missing directory is an empty corpus, not an error.
///
/// # Errors
///
/// Returns [`CorpusError`] for unreadable or malformed files.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, CaseSpec)>, CorpusError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let fname = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&path).map_err(|e| CorpusError {
            what: fname.clone(),
            reason: format!("unreadable: {e}"),
        })?;
        out.push((fname.clone(), parse(&fname, &text)?));
    }
    Ok(out)
}

/// Writes a case to `<dir>/<name>.case`, creating `dir` if needed.
///
/// # Errors
///
/// Returns [`CorpusError`] if the directory or file cannot be written.
pub fn save(dir: &Path, case: &CaseSpec) -> Result<std::path::PathBuf, CorpusError> {
    std::fs::create_dir_all(dir).map_err(|e| CorpusError {
        what: case.name().to_string(),
        reason: format!("cannot create {}: {e}", dir.display()),
    })?;
    let path = dir.join(format!("{}.case", case.name()));
    std::fs::write(&path, to_text(case)).map_err(|e| CorpusError {
        what: case.name().to_string(),
        reason: format!("cannot write {}: {e}", path.display()),
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn generated_cases_round_trip() {
        for i in 0..48 {
            let case = generate_case(0xDECAF, i);
            let text = to_text(&case);
            let back = parse("t", &text).expect("round-trip parse");
            assert_eq!(back, case, "round-trip mismatch:\n{text}");
        }
    }

    #[test]
    fn coverage_specs_round_trip() {
        for spec in crate::gen::coverage_specs() {
            let case = CaseSpec::Illegal(spec);
            let text = to_text(&case);
            assert_eq!(parse("t", &text).unwrap(), case, "{text}");
        }
    }

    #[test]
    fn sweep_specs_round_trip() {
        for spec in crate::abort::sweep_specs() {
            let case = CaseSpec::Legal(spec);
            assert_eq!(parse("t", &to_text(&case)).unwrap(), case);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("t", "nonsense").is_err());
        assert!(parse("t", "# conform-case-v1\nname x\nkind legal\n").is_err());
        assert!(parse("t", "# conform-case-v1\nname x\nkind illegal\n").is_err());
        assert!(parse(
            "t",
            &format!("{MAGIC}\nname x\nkind legal\ninput signed\nop frob v0 imm 1\n")
        )
        .is_err());
    }

    #[test]
    fn decimal_constf_accepted() {
        let text =
            format!("{MAGIC}\nname x\nkind legal\nelem f32\ninput signed\nop add v0 constf 1.5\n");
        match parse("t", &text).unwrap() {
            CaseSpec::Legal(l) => assert_eq!(l.ops[0].rhs, Rhs::ConstF(vec![1.5])),
            CaseSpec::Illegal(_) => panic!("expected legal"),
        }
    }
}
