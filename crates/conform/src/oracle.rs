//! The differential oracle: every case runs through every pipeline and
//! the results are compared.
//!
//! For a **legal** case the oracle closes the paper's conformance
//! triangle: the gold evaluator, the plain scalar binary, the untranslated
//! Liquid binary, the dynamically translated Liquid binary at every
//! supported width, and the native SIMD binary at every width must agree.
//! On top of the per-array gold check, the final memory image and the
//! driver's live-out registers (`r0`, `r1`, `r14`) of the translated run
//! are diffed byte-for-byte against the untranslated scalar run — the
//! transparency contract of §3: translation must be observationally
//! invisible. (A sole exception: an `f32` *reduction* cell is compared
//! with the verifier's relative tolerance, because vector reduction
//! reassociates — exactly as the paper's SIMD hardware does.)
//!
//! For an **illegal** case the oracle asserts the translator *never*
//! commits microcode (zero successes at every width), aborts at least
//! once with the family's tag, and that execution stays bit-identical to
//! a translator-less scalar machine — abort, never mistranslate.

use liquid_simd::{
    build_liquid, build_native, build_plain, gold, verify_against_gold, Machine, MachineConfig,
    RunReport, SimError, F32_RTOL,
};
use liquid_simd_isa::{asm, ElemType, Program, SUPPORTED_WIDTHS};
use liquid_simd_mem::Memory;

use crate::gen::{CaseSpec, IllegalSpec, LegalSpec};

/// `true` if the run's translator stats record an external abort with the
/// injection machinery's `"injected-abort"` cause. External aborts all
/// share the `external` statistics tag, so the cause string in the
/// provenance records is what distinguishes an injected abort from, say,
/// a periodic interrupt.
#[must_use]
pub fn saw_injected_abort(report: &RunReport) -> bool {
    use liquid_simd::translator::AbortReason;
    report.translator.abort_records.iter().any(|r| {
        matches!(
            r.reason,
            AbortReason::External {
                what: "injected-abort"
            }
        )
    })
}

/// Registers the driver owns at `halt`: the scratch index (`r0`), the rep
/// counter (`r1`), and the link register (`r14`). Registers written inside
/// an outlined body are dead after the call and are *not* architectural
/// outputs — translated microcode only maintains the induction variable
/// (the paper's rule 10), so only driver-owned registers are comparable.
pub const LIVE_OUT_REGS: [usize; 3] = [0, 1, 14];

/// The verdict on one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseOutcome {
    /// Case name.
    pub name: String,
    /// `"legal"` or `"illegal"`.
    pub kind: &'static str,
    /// Case family: `"legal"` for random legal cases, the illegal
    /// family keyword (`strided`, `cam-miss`, …) for illegal cases,
    /// or the kernelgen family name for generated variants.
    pub family: String,
    /// Whether every check passed.
    pub passed: bool,
    /// Legal: at least one width actually committed a translation.
    /// Illegal: every width aborted without committing.
    pub translated: bool,
    /// Every distinct translator abort tag observed across all widths
    /// (sorted). Feeds the `abort_coverage` report section.
    pub abort_tags: Vec<String>,
    /// First failing check, empty when passed.
    pub detail: String,
}

fn fail(name: &str, kind: &'static str, detail: String) -> CaseOutcome {
    CaseOutcome {
        name: name.to_string(),
        kind,
        family: String::new(),
        passed: false,
        translated: false,
        abort_tags: Vec::new(),
        detail,
    }
}

/// Runs a program and also captures final memory and the scalar register
/// file (the facade's `run` drops the machine, losing the registers).
///
/// # Errors
///
/// Returns [`SimError`] for simulation faults.
pub fn run_full(
    program: &Program,
    config: MachineConfig,
) -> Result<(RunReport, Memory, [u32; 16]), SimError> {
    let mut m = Machine::new(program, config);
    let report = m.run()?;
    let regs = m.regs().r;
    Ok((report, m.memory().clone(), regs))
}

fn f32_close(a: f32, b: f32) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= F32_RTOL * scale
}

/// Byte-for-byte memory diff, with an allowance list of `(addr, len)`
/// ranges holding `f32` cells that may differ within tolerance (reduction
/// outputs). Returns the first difference as text.
fn diff_memory(a: &Memory, b: &Memory, rtol_ranges: &[(u32, u32)]) -> Option<String> {
    let base = a.base();
    let len = a.size().min(b.size());
    let abytes = a.slice(base, len).ok()?;
    let bbytes = b.slice(base, len).ok()?;
    let mut i = 0;
    while i < len {
        if abytes[i] != bbytes[i] {
            let addr = base + i as u32;
            if let Some(&(start, _)) = rtol_ranges
                .iter()
                .find(|&&(start, rlen)| addr >= start && addr < start + rlen)
            {
                // Compare the whole aligned f32 cell with tolerance.
                let off = (start - base) as usize;
                let fa = f32::from_bits(u32::from_le_bytes(
                    abytes[off..off + 4].try_into().expect("4-byte cell"),
                ));
                let fb = f32::from_bits(u32::from_le_bytes(
                    bbytes[off..off + 4].try_into().expect("4-byte cell"),
                ));
                if f32_close(fa, fb) {
                    i = off + 4;
                    continue;
                }
                return Some(format!(
                    "f32 cell at {addr:#010x} differs beyond tolerance: {fa} vs {fb}"
                ));
            }
            return Some(format!(
                "memory byte at {addr:#010x} differs: {:#04x} vs {:#04x}",
                abytes[i], bbytes[i]
            ));
        }
        i += 1;
    }
    None
}

/// Re-runs `program` with the same configuration on the superblock
/// backend and requires bit-exact agreement with the interpreter run that
/// produced `interp`: the simulated cycle count, the final memory image,
/// and the full register file. Pre-lowered dispatch is an implementation
/// detail of the simulator — any observable difference is a backend bug,
/// so there is no tolerance here (not even the f32-reduction allowance;
/// identical configs must reassociate identically).
fn diff_backend(
    what: &str,
    program: &Program,
    config: MachineConfig,
    interp: (&RunReport, &Memory, &[u32; 16]),
) -> Option<String> {
    let sb = config.with_backend(liquid_simd::BackendKind::Superblock);
    let (report, mem, regs) = match run_full(program, sb) {
        Ok(v) => v,
        Err(e) => return Some(format!("{what} superblock run: {e}")),
    };
    if report.cycles != interp.0.cycles {
        return Some(format!(
            "{what}: superblock simulated {} cycles, interpreter {}",
            report.cycles, interp.0.cycles
        ));
    }
    if let Some(d) = diff_memory(interp.1, &mem, &[]) {
        return Some(format!("{what} superblock vs interpreter: {d}"));
    }
    if &regs != interp.2 {
        let r = (0..16).find(|&r| regs[r] != interp.2[r]).unwrap_or(0);
        return Some(format!(
            "{what} superblock vs interpreter: r{r} differs ({:#x} vs {:#x})",
            regs[r], interp.2[r]
        ));
    }
    None
}

fn diff_live_outs(a: &[u32; 16], b: &[u32; 16]) -> Option<String> {
    LIVE_OUT_REGS.iter().find_map(|&r| {
        (a[r] != b[r]).then(|| format!("live-out r{r} differs: {:#x} vs {:#x}", a[r], b[r]))
    })
}

/// Checks one legal case. Returns a failing outcome instead of panicking,
/// so a fuzz sweep reports every broken case.
#[must_use]
pub fn check_legal(spec: &LegalSpec) -> CaseOutcome {
    let name = spec.name.clone();
    let w = match spec.to_workload() {
        Ok(w) => w,
        Err(e) => return fail(&name, "legal", format!("spec does not build: {e}")),
    };
    let f32_racc_rtol = spec.elem == ElemType::F32 && spec.reduce.is_some();
    let mut outcome = check_workload(&name, &w, f32_racc_rtol, spec.inject_last);
    outcome.family = "legal".to_string();
    outcome
}

/// The full legal-side differential check for any workload — the
/// conformance triangle (gold / plain / liquid scalar / translated at
/// every width / native) plus backend and live-out diffing. This is
/// the oracle core shared by random legal cases and by generated
/// kernelgen variants.
///
/// `f32_racc_rtol` widens the comparison of the `racc` reduction cell
/// to the verifier's f32 tolerance (vector reductions reassociate).
#[must_use]
pub fn check_workload(
    name: &str,
    w: &liquid_simd::Workload,
    f32_racc_rtol: bool,
    inject_last: bool,
) -> CaseOutcome {
    let kind = "legal";
    let gold_env = match gold::run_gold(w) {
        Ok(env) => env,
        Err(e) => return fail(name, kind, format!("gold evaluation failed: {e}")),
    };

    macro_rules! try_or_fail {
        ($expr:expr, $what:literal) => {
            match $expr {
                Ok(v) => v,
                Err(e) => return fail(name, kind, format!(concat!($what, ": {}"), e)),
            }
        };
    }

    let plain = try_or_fail!(build_plain(w), "plain build");
    let (plain_report, mem, plain_regs) = try_or_fail!(
        run_full(&plain.program, MachineConfig::scalar_only()),
        "plain run"
    );
    try_or_fail!(
        verify_against_gold("plain/scalar", &plain.program, &mem, &gold_env),
        "plain vs gold"
    );
    if let Some(d) = diff_backend(
        "plain/scalar",
        &plain.program,
        MachineConfig::scalar_only(),
        (&plain_report, &mem, &plain_regs),
    ) {
        return fail(name, kind, d);
    }

    let liquid = try_or_fail!(build_liquid(w), "liquid build");
    let (scalar_report, scalar_mem, scalar_regs) = try_or_fail!(
        run_full(&liquid.program, MachineConfig::scalar_only()),
        "liquid scalar run"
    );
    try_or_fail!(
        verify_against_gold("liquid/scalar", &liquid.program, &scalar_mem, &gold_env),
        "liquid scalar vs gold"
    );
    if let Some(d) = diff_backend(
        "liquid/scalar",
        &liquid.program,
        MachineConfig::scalar_only(),
        (&scalar_report, &scalar_mem, &scalar_regs),
    ) {
        return fail(name, kind, d);
    }

    // Reduction cells of f32 kernels legitimately differ between scalar
    // and vector order; everything else must be byte-identical.
    let rtol_ranges: Vec<(u32, u32)> = if f32_racc_rtol {
        liquid
            .program
            .symbol_by_name("racc")
            .map(|(_, sym)| (sym.addr, sym.size))
            .into_iter()
            .collect()
    } else {
        Vec::new()
    };

    let mut translated = false;
    let mut abort_tags: Vec<String> = Vec::new();
    for &width in &SUPPORTED_WIDTHS {
        let (report, t_mem, t_regs) = try_or_fail!(
            run_full(&liquid.program, MachineConfig::liquid(width)),
            "liquid translated run"
        );
        translated |= report.translator.successes > 0;
        for tag in report.translator.aborts.keys() {
            if !abort_tags.iter().any(|t| t == tag) {
                abort_tags.push((*tag).to_string());
            }
        }
        try_or_fail!(
            verify_against_gold(
                &format!("liquid/translated@{width}"),
                &liquid.program,
                &t_mem,
                &gold_env
            ),
            "translated vs gold"
        );
        if let Some(d) = diff_memory(&scalar_mem, &t_mem, &rtol_ranges) {
            return fail(name, kind, format!("translated@{width} vs scalar: {d}"));
        }
        if let Some(d) = diff_live_outs(&scalar_regs, &t_regs) {
            return fail(name, kind, format!("translated@{width} vs scalar: {d}"));
        }
        if let Some(d) = diff_backend(
            &format!("liquid/translated@{width}"),
            &liquid.program,
            MachineConfig::liquid(width),
            (&report, &t_mem, &t_regs),
        ) {
            return fail(name, kind, d);
        }

        let native = try_or_fail!(build_native(w, width), "native build");
        let (_, n_mem, _) = try_or_fail!(
            run_full(&native.program, MachineConfig::native(width)),
            "native run"
        );
        try_or_fail!(
            verify_against_gold(
                &format!("native@{width}"),
                &native.program,
                &n_mem,
                &gold_env
            ),
            "native vs gold"
        );
    }

    if inject_last {
        if let Some(detail) = check_inject_last(&liquid.program, &gold_env) {
            return fail(name, kind, detail);
        }
    }

    abort_tags.sort_unstable();
    CaseOutcome {
        name: name.to_string(),
        kind,
        family: String::new(),
        passed: true,
        translated,
        abort_tags,
        detail: String::new(),
    }
}

/// The abort-at-last-instruction regression check: inject an external
/// abort exactly at the final retired instruction of the first translation
/// window and require a gold-correct run with the abort accounted.
fn check_inject_last(program: &Program, gold_env: &liquid_simd::DataEnv) -> Option<String> {
    let clean = match run_full(program, MachineConfig::liquid(8)) {
        Ok((report, _, _)) => report,
        Err(e) => return Some(format!("inject-last clean run: {e}")),
    };
    let Some(window) = clean.windows.iter().find(|w| w.completed) else {
        return Some("inject-last case never completed a translation window".to_string());
    };
    let mut cfg = MachineConfig::liquid(8);
    cfg.interrupt_at = vec![window.end_retired];
    let mut m = Machine::new(program, cfg);
    let report = match m.run() {
        Ok(r) => r,
        Err(e) => return Some(format!("inject-last run: {e}")),
    };
    if !saw_injected_abort(&report) {
        return Some(format!(
            "inject-last at retire {} raised no injected abort: {:?}",
            window.end_retired, report.translator.aborts
        ));
    }
    if let Err(e) = verify_against_gold("inject-last", program, m.memory(), gold_env) {
        return Some(format!("inject-last vs gold: {e}"));
    }

    // The same injection on the superblock backend: the external abort
    // lands mid-block, so the backend must fall back to the interpreter's
    // gold-correct scalar recovery — bit-identically.
    let mut sb_cfg = MachineConfig::liquid(8).with_backend(liquid_simd::BackendKind::Superblock);
    sb_cfg.interrupt_at = vec![window.end_retired];
    let mut sb = Machine::new(program, sb_cfg);
    let sb_report = match sb.run() {
        Ok(r) => r,
        Err(e) => return Some(format!("inject-last superblock run: {e}")),
    };
    if !saw_injected_abort(&sb_report) {
        return Some(format!(
            "inject-last superblock at retire {} raised no injected abort: {:?}",
            window.end_retired, sb_report.translator.aborts
        ));
    }
    if sb_report.cycles != report.cycles {
        return Some(format!(
            "inject-last: superblock simulated {} cycles, interpreter {}",
            sb_report.cycles, report.cycles
        ));
    }
    if let Some(d) = diff_memory(m.memory(), sb.memory(), &[]) {
        return Some(format!("inject-last superblock vs interpreter: {d}"));
    }
    if sb.regs().r != m.regs().r {
        return Some("inject-last superblock vs interpreter: register file differs".to_string());
    }
    None
}

/// Checks one illegal case: must abort with the family's tag at some
/// width, commit nothing anywhere, and stay bit-identical to the
/// translator-less machine.
#[must_use]
pub fn check_illegal(spec: &IllegalSpec) -> CaseOutcome {
    let src = spec.to_asm();
    let mut outcome = check_untranslatable(&spec.name, &src, spec.kind.expected_tag());
    outcome.family = spec.kind.family().to_string();
    outcome
}

/// The abort-never-mistranslate check for any assembly region — the
/// oracle core shared by illegal conform cases and by generated
/// untranslatable kernelgen variants. The region must abort with
/// `expected_tag` at some width, commit nothing anywhere, and stay
/// bit-identical to the translator-less machine.
#[must_use]
pub fn check_untranslatable(name: &str, src: &str, expected_tag: &str) -> CaseOutcome {
    let kind = "illegal";
    let program = match asm::assemble(src) {
        Ok(p) => p,
        Err(e) => return fail(name, kind, format!("illegal case does not assemble: {e}")),
    };
    let (ref_mem, ref_regs) = match run_full(&program, MachineConfig::scalar_only()) {
        Ok((report, mem, regs)) => {
            if !report.halted {
                return fail(name, kind, "reference run did not halt".to_string());
            }
            (mem, regs)
        }
        Err(e) => return fail(name, kind, format!("reference run failed: {e}")),
    };

    let mut tags: Vec<String> = Vec::new();
    for &width in &SUPPORTED_WIDTHS {
        let (report, mem, regs) = match run_full(&program, MachineConfig::liquid(width)) {
            Ok(v) => v,
            Err(e) => return fail(name, kind, format!("liquid@{width} run failed: {e}")),
        };
        if report.translator.successes > 0 {
            return fail(
                name,
                kind,
                format!(
                    "MISTRANSLATION: illegal region committed microcode at width {width} \
                     (expected abort `{expected_tag}`)"
                ),
            );
        }
        if report.translator.aborted() == 0 {
            return fail(
                name,
                kind,
                format!("liquid@{width} neither translated nor aborted"),
            );
        }
        for tag in report.translator.aborts.keys() {
            if !tags.iter().any(|t| t == tag) {
                tags.push((*tag).to_string());
            }
        }
        // Translation is observational: an aborted region must leave
        // execution bit-identical to the translator-less machine.
        if let Some(d) = diff_memory(&ref_mem, &mem, &[]) {
            return fail(name, kind, format!("liquid@{width} vs scalar-only: {d}"));
        }
        if regs != ref_regs {
            let r = (0..16).find(|&r| regs[r] != ref_regs[r]).unwrap_or(0);
            return fail(
                name,
                kind,
                format!(
                    "liquid@{width} vs scalar-only: r{r} differs ({:#x} vs {:#x})",
                    regs[r], ref_regs[r]
                ),
            );
        }
        // Aborting regions exercise the backend's fallback paths; the
        // superblock run must still be bit-identical to the interpreter.
        if let Some(d) = diff_backend(
            &format!("illegal liquid@{width}"),
            &program,
            MachineConfig::liquid(width),
            (&report, &mem, &regs),
        ) {
            return fail(name, kind, d);
        }
    }

    if !tags.iter().any(|t| t == expected_tag) {
        return fail(
            name,
            kind,
            format!("expected abort tag `{expected_tag}` at some width, saw {tags:?}"),
        );
    }

    tags.sort_unstable();
    CaseOutcome {
        name: name.to_string(),
        kind,
        family: String::new(),
        passed: true,
        translated: true,
        abort_tags: tags,
        detail: String::new(),
    }
}

/// Checks any case.
#[must_use]
pub fn check_case(spec: &CaseSpec) -> CaseOutcome {
    match spec {
        CaseSpec::Legal(s) => check_legal(s),
        CaseSpec::Illegal(s) => check_illegal(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, IllegalKind};

    #[test]
    fn a_handful_of_generated_cases_pass() {
        for i in 0..6 {
            let spec = generate_case(0xC0FFEE, i);
            let outcome = check_case(&spec);
            assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
        }
    }

    #[test]
    fn every_illegal_family_aborts_and_matches_scalar() {
        for kind in IllegalKind::all_canonical() {
            let spec = IllegalSpec {
                name: format!("unit_{}", kind.family()),
                kind,
                data_seed: 42,
            };
            let outcome = check_illegal(&spec);
            assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
            assert!(
                outcome
                    .abort_tags
                    .iter()
                    .any(|t| t == spec.kind.expected_tag()),
                "{}: tags {:?} missing {}",
                outcome.name,
                outcome.abort_tags,
                spec.kind.expected_tag()
            );
        }
    }

    #[test]
    fn memory_diff_reports_and_tolerates() {
        let mut a = Memory::new(0x100, 16);
        let mut b = Memory::new(0x100, 16);
        assert!(diff_memory(&a, &b, &[]).is_none());
        a.write_f32(0x104, 1.0000).unwrap();
        b.write_f32(0x104, 1.0001).unwrap();
        assert!(diff_memory(&a, &b, &[]).is_some());
        assert!(diff_memory(&a, &b, &[(0x104, 4)]).is_none());
        b.write_f32(0x104, 2.0).unwrap();
        assert!(diff_memory(&a, &b, &[(0x104, 4)]).is_some());
    }
}
