//! Generative differential conformance for the Liquid SIMD pipeline.
//!
//! The paper's contract is stark: a Liquid binary must behave *identically*
//! on every machine — scalar-only, or any accelerator width, interrupted
//! at any instant — and an untranslatable region must abort, never
//! mistranslate. This crate stress-tests that contract generatively:
//!
//! 1. **Generate** ([`gen`]): a seeded stream of random-but-valid
//!    vectorizable kernels (saturating idioms, reductions, butterfly
//!    permutations, constant patterns, fission-forcing shapes) plus a
//!    deliberate population of *illegal* regions (non-affine strides,
//!    runtime-indexed permutes, scalar stores, CAM-missing offset maps,
//!    oversized bodies, nested calls).
//! 2. **Check** ([`oracle`]): each case runs through every pipeline — gold
//!    evaluator, plain scalar, Liquid untranslated, Liquid translated at
//!    every supported width, native SIMD — and final memory plus live-out
//!    registers are diffed byte-for-byte.
//! 3. **Sweep** ([`abort`]): external aborts are injected at *every*
//!    retired-instruction index of a translating region, asserting the
//!    scalar fallback stays gold-correct and the microcode cache holds no
//!    partial entry.
//! 4. **Shrink** ([`shrink`]) and **persist** ([`corpus`]): failing cases
//!    are minimised and written as `.case` files that replay as permanent
//!    regression tests.
//!
//! The whole run is deterministic: the same seed produces byte-identical
//! reports at any `--jobs`, because the report orders by case index and
//! contains no timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abort;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

use liquid_simd::run_tasks;

use abort::SweepOutcome;
use gen::CaseSpec;
use oracle::CaseOutcome;

/// Options for one conformance run.
#[derive(Clone, Debug)]
pub struct ConformOptions {
    /// Master seed; every case derives a decorrelated stream from it.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Worker threads (`1` = serial; never affects results).
    pub jobs: usize,
    /// Shrink failing legal cases before reporting (slower on failure,
    /// minimal repros in the report).
    pub shrink: bool,
}

impl Default for ConformOptions {
    fn default() -> ConformOptions {
        ConformOptions {
            seed: 0xC0FFEE,
            cases: 200,
            jobs: 1,
            shrink: true,
        }
    }
}

/// A failing case, minimised and serialised for the corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure {
    /// The (possibly shrunk) failing spec.
    pub case: CaseSpec,
    /// The oracle's verdict on the *shrunk* spec.
    pub outcome: CaseOutcome,
    /// `conform-case-v1` text, ready to drop into `tests/corpus/`.
    pub corpus_text: String,
}

/// The result of one conformance run.
#[derive(Clone, Debug)]
pub struct ConformReport {
    /// Seed the run used.
    pub seed: u64,
    /// Per-case verdicts, in case-index order.
    pub cases: Vec<CaseOutcome>,
    /// Minimised failures (empty on a clean run).
    pub failures: Vec<Failure>,
    /// Abort-injection sweep results for the standard workloads.
    pub sweeps: Vec<SweepOutcome>,
}

impl ConformReport {
    /// `true` when every case and every sweep passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.cases.iter().all(|c| c.passed) && self.sweeps.iter().all(|s| s.passed)
    }

    /// Counts `(passed, failed)` cases.
    #[must_use]
    pub fn tally(&self) -> (u64, u64) {
        let passed = self.cases.iter().filter(|c| c.passed).count() as u64;
        (passed, self.cases.len() as u64 - passed)
    }
}

/// Runs the full conformance suite: generated cases through the oracle
/// (in parallel, deterministically), failing legal cases shrunk, plus the
/// standard abort-injection sweeps.
#[must_use]
pub fn run_conform(opts: &ConformOptions) -> ConformReport {
    // Case checking is embarrassingly parallel, and each task is
    // infallible — a failing case is data, not an error — so the scheduler
    // can never reorder or drop results.
    let cases: Vec<CaseOutcome> = run_tasks(opts.jobs, opts.cases as usize, |i| {
        let spec = gen::generate_case(opts.seed, i as u64);
        Ok::<_, std::convert::Infallible>(oracle::check_case(&spec))
    })
    .unwrap_or_else(|e| match e {});

    // Shrinking re-runs the oracle many times per failure; keep it serial
    // (failures are rare) and ordered (determinism).
    let failures: Vec<Failure> = cases
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.passed)
        .map(|(i, _)| {
            let spec = gen::generate_case(opts.seed, i as u64);
            let (case, outcome) = match spec {
                CaseSpec::Legal(l) if opts.shrink => {
                    let small = shrink::shrink_legal(&l, &|s| !oracle::check_legal(s).passed);
                    let outcome = oracle::check_legal(&small);
                    (CaseSpec::Legal(small), outcome)
                }
                other => {
                    let outcome = oracle::check_case(&other);
                    (other, outcome)
                }
            };
            let corpus_text = corpus::to_text(&case);
            Failure {
                case,
                outcome,
                corpus_text,
            }
        })
        .collect();

    let sweeps = abort::run_standard_sweeps(8);

    ConformReport {
        seed: opts.seed,
        cases,
        failures,
        sweeps,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as `conform-v1` JSON. Deliberately free of timing,
/// job counts, and machine details: the same seed must produce
/// byte-identical output on any host at any parallelism.
#[must_use]
pub fn report_to_json(report: &ConformReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"conform-v1\",\n");
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!("  \"cases\": {},\n", report.cases.len()));
    s.push_str("  \"widths\": [2, 4, 8, 16],\n");
    let (passed, failed) = report.tally();
    let translated = report.cases.iter().filter(|c| c.translated).count();
    s.push_str(&format!(
        "  \"summary\": {{\"passed\": {passed}, \"failed\": {failed}, \"translated\": {translated}, \"ok\": {}}},\n",
        report.passed()
    ));

    s.push_str("  \"case_results\": [\n");
    for (i, c) in report.cases.iter().enumerate() {
        let comma = if i + 1 < report.cases.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"passed\": {}, \"translated\": {}, \"detail\": \"{}\"}}{comma}\n",
            json_escape(&c.name),
            c.kind,
            c.passed,
            c.translated,
            json_escape(&c.detail)
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"failures\": [\n");
    for (i, f) in report.failures.iter().enumerate() {
        let comma = if i + 1 < report.failures.len() {
            ","
        } else {
            ""
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"corpus\": \"{}\"}}{comma}\n",
            json_escape(&f.outcome.name),
            json_escape(&f.outcome.detail),
            json_escape(&f.corpus_text)
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"abort_sweep\": [\n");
    for (i, sw) in report.sweeps.iter().enumerate() {
        let comma = if i + 1 < report.sweeps.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"lanes\": {}, \"points\": {}, \"passed\": {}, \"detail\": \"{}\"}}{comma}\n",
            json_escape(&sw.name),
            sw.lanes,
            sw.points,
            sw.passed,
            json_escape(&sw.detail)
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(jobs: usize) -> ConformOptions {
        ConformOptions {
            seed: 0xC0FFEE,
            cases: 8,
            jobs,
            shrink: true,
        }
    }

    #[test]
    fn small_run_passes_and_is_deterministic_across_jobs() {
        let serial = run_conform(&small_opts(1));
        assert!(serial.passed(), "failures: {:?}", serial.failures);
        let parallel = run_conform(&small_opts(4));
        assert_eq!(
            report_to_json(&serial),
            report_to_json(&parallel),
            "JSON must be byte-identical at any --jobs"
        );
    }

    #[test]
    fn report_json_shape() {
        let report = run_conform(&ConformOptions {
            cases: 3,
            ..small_opts(2)
        });
        let json = report_to_json(&report);
        assert!(json.contains("\"schema\": \"conform-v1\""));
        assert!(json.contains("\"abort_sweep\""));
        assert!(json.contains("sweep_sat"));
        assert!(json.contains("sweep_red"));
        // No timing anywhere: reruns must be byte-identical.
        assert!(!json.contains("seconds") && !json.contains("jobs"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
