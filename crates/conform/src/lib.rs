//! Generative differential conformance for the Liquid SIMD pipeline.
//!
//! The paper's contract is stark: a Liquid binary must behave *identically*
//! on every machine — scalar-only, or any accelerator width, interrupted
//! at any instant — and an untranslatable region must abort, never
//! mistranslate. This crate stress-tests that contract generatively:
//!
//! 1. **Generate** ([`gen`]): a seeded stream of random-but-valid
//!    vectorizable kernels (saturating idioms, reductions, butterfly
//!    permutations, constant patterns, fission-forcing shapes) plus a
//!    deliberate population of *illegal* regions (non-affine strides,
//!    runtime-indexed permutes, scalar stores, CAM-missing offset maps,
//!    oversized bodies, nested calls).
//! 2. **Check** ([`oracle`]): each case runs through every pipeline — gold
//!    evaluator, plain scalar, Liquid untranslated, Liquid translated at
//!    every supported width, native SIMD — and final memory plus live-out
//!    registers are diffed byte-for-byte.
//! 3. **Sweep** ([`abort`]): external aborts are injected at *every*
//!    retired-instruction index of a translating region, asserting the
//!    scalar fallback stays gold-correct and the microcode cache holds no
//!    partial entry.
//! 4. **Shrink** ([`shrink`]) and **persist** ([`corpus`]): failing cases
//!    are minimised and written as `.case` files that replay as permanent
//!    regression tests.
//!
//! The whole run is deterministic: the same seed produces byte-identical
//! reports at any `--jobs`, because the report orders by case index and
//! contains no timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abort;
pub mod corpus;
pub mod families;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::collections::BTreeMap;

use liquid_simd::run_tasks;
use liquid_simd::translator::ABORT_TAGS;

use abort::SweepOutcome;
use gen::CaseSpec;
use oracle::CaseOutcome;

/// Options for one conformance run.
#[derive(Clone, Debug)]
pub struct ConformOptions {
    /// Master seed; every case derives a decorrelated stream from it.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Worker threads (`1` = serial; never affects results).
    pub jobs: usize,
    /// Shrink failing legal cases before reporting (slower on failure,
    /// minimal repros in the report).
    pub shrink: bool,
}

impl Default for ConformOptions {
    fn default() -> ConformOptions {
        ConformOptions {
            seed: 0xC0FFEE,
            cases: 200,
            jobs: 1,
            shrink: true,
        }
    }
}

/// A failing case, minimised and serialised for the corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure {
    /// The (possibly shrunk) failing spec.
    pub case: CaseSpec,
    /// The oracle's verdict on the *shrunk* spec.
    pub outcome: CaseOutcome,
    /// `conform-case-v1` text, ready to drop into `tests/corpus/`.
    pub corpus_text: String,
}

/// Which abort paths the run exercised, tallied per case family
/// (satellite of the kernelgen work: the report now *proves* which
/// [`AbortReason`](liquid_simd::translator::AbortReason) variants have
/// a living witness).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbortCoverage {
    /// `family → (tag → times observed)`, ordered by family name.
    pub by_family: BTreeMap<String, BTreeMap<String, u64>>,
    /// Translator abort tags no case observed and no exemption covers.
    /// Non-empty means the suite has a blind spot.
    pub uncovered: Vec<String>,
    /// Tags deliberately not expected from generated cases, with the
    /// reason each is still accounted for.
    pub exempt: Vec<(String, String)>,
}

/// Tallies abort coverage over a set of case outcomes. `swept` says
/// whether abort-injection sweeps ran alongside these cases: the
/// `external` tag is only reachable through injection, so it is
/// credited to the sweeps when they ran and listed exempt when not.
#[must_use]
pub fn abort_coverage(cases: &[CaseOutcome], swept: bool) -> AbortCoverage {
    let mut by_family: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for c in cases {
        if c.family.is_empty() {
            continue;
        }
        let tags = by_family.entry(c.family.clone()).or_default();
        for t in &c.abort_tags {
            *tags.entry(t.clone()).or_insert(0) += 1;
        }
    }

    let mut exempt = vec![(
        "iteration-mismatch".to_string(),
        "in-order retirement replays iteration one exactly; the divergence path is pinned \
         unreachable by a translator unit test"
            .to_string(),
    )];
    if swept {
        by_family
            .entry("abort-sweep".to_string())
            .or_default()
            .insert("external".to_string(), 1);
    } else {
        exempt.push((
            "external".to_string(),
            "only reachable through abort injection; exercised by the sweep phase, which \
             this run does not include"
                .to_string(),
        ));
    }

    let uncovered = ABORT_TAGS
        .iter()
        .filter(|tag| {
            !by_family.values().any(|tags| tags.contains_key(**tag))
                && !exempt.iter().any(|(t, _)| t == *tag)
        })
        .map(|t| (*t).to_string())
        .collect();

    AbortCoverage {
        by_family,
        uncovered,
        exempt,
    }
}

/// The result of one conformance run.
#[derive(Clone, Debug)]
pub struct ConformReport {
    /// Seed the run used.
    pub seed: u64,
    /// Per-case verdicts, in case-index order: the seeded random cases
    /// first, then one deterministic `cov_*` witness per illegal family.
    pub cases: Vec<CaseOutcome>,
    /// Minimised failures (empty on a clean run).
    pub failures: Vec<Failure>,
    /// Abort-injection sweep results for the standard workloads.
    pub sweeps: Vec<SweepOutcome>,
    /// Which abort tags the run exercised, per family.
    pub coverage: AbortCoverage,
}

impl ConformReport {
    /// `true` when every case and every sweep passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.cases.iter().all(|c| c.passed) && self.sweeps.iter().all(|s| s.passed)
    }

    /// Counts `(passed, failed)` cases.
    #[must_use]
    pub fn tally(&self) -> (u64, u64) {
        let passed = self.cases.iter().filter(|c| c.passed).count() as u64;
        (passed, self.cases.len() as u64 - passed)
    }
}

/// Runs the full conformance suite: generated cases through the oracle
/// (in parallel, deterministically), failing legal cases shrunk, plus the
/// standard abort-injection sweeps.
#[must_use]
pub fn run_conform(opts: &ConformOptions) -> ConformReport {
    // The seeded random stream, then one deterministic witness per
    // illegal family so the coverage section never depends on what the
    // random mix happened to draw.
    let mut specs: Vec<CaseSpec> = (0..opts.cases)
        .map(|i| gen::generate_case(opts.seed, i))
        .collect();
    specs.extend(gen::coverage_specs().into_iter().map(CaseSpec::Illegal));

    // Case checking is embarrassingly parallel, and each task is
    // infallible — a failing case is data, not an error — so the scheduler
    // can never reorder or drop results.
    let cases: Vec<CaseOutcome> = run_tasks(opts.jobs, specs.len(), |i| {
        Ok::<_, std::convert::Infallible>(oracle::check_case(&specs[i]))
    })
    .unwrap_or_else(|e| match e {});

    // Shrinking re-runs the oracle many times per failure; keep it serial
    // (failures are rare) and ordered (determinism).
    let failures: Vec<Failure> = cases
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.passed)
        .map(|(i, _)| {
            let spec = specs[i].clone();
            let (case, outcome) = match spec {
                CaseSpec::Legal(l) if opts.shrink => {
                    let small = shrink::shrink_legal(&l, &|s| !oracle::check_legal(s).passed);
                    let outcome = oracle::check_legal(&small);
                    (CaseSpec::Legal(small), outcome)
                }
                other => {
                    let outcome = oracle::check_case(&other);
                    (other, outcome)
                }
            };
            let corpus_text = corpus::to_text(&case);
            Failure {
                case,
                outcome,
                corpus_text,
            }
        })
        .collect();

    let sweeps = abort::run_standard_sweeps(8);
    let coverage = abort_coverage(&cases, true);

    ConformReport {
        seed: opts.seed,
        cases,
        failures,
        sweeps,
        coverage,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as `conform-v1` JSON. Deliberately free of timing,
/// job counts, and machine details: the same seed must produce
/// byte-identical output on any host at any parallelism.
#[must_use]
pub fn report_to_json(report: &ConformReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"conform-v1\",\n");
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!("  \"cases\": {},\n", report.cases.len()));
    s.push_str("  \"widths\": [2, 4, 8, 16],\n");
    let (passed, failed) = report.tally();
    let translated = report.cases.iter().filter(|c| c.translated).count();
    s.push_str(&format!(
        "  \"summary\": {{\"passed\": {passed}, \"failed\": {failed}, \"translated\": {translated}, \"ok\": {}}},\n",
        report.passed()
    ));

    s.push_str("  \"case_results\": [\n");
    for (i, c) in report.cases.iter().enumerate() {
        let comma = if i + 1 < report.cases.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"family\": \"{}\", \"passed\": {}, \"translated\": {}, \"detail\": \"{}\"}}{comma}\n",
            json_escape(&c.name),
            c.kind,
            json_escape(&c.family),
            c.passed,
            c.translated,
            json_escape(&c.detail)
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"failures\": [\n");
    for (i, f) in report.failures.iter().enumerate() {
        let comma = if i + 1 < report.failures.len() {
            ","
        } else {
            ""
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"corpus\": \"{}\"}}{comma}\n",
            json_escape(&f.outcome.name),
            json_escape(&f.outcome.detail),
            json_escape(&f.corpus_text)
        ));
    }
    s.push_str("  ],\n");

    s.push_str("  \"abort_sweep\": [\n");
    for (i, sw) in report.sweeps.iter().enumerate() {
        let comma = if i + 1 < report.sweeps.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"lanes\": {}, \"points\": {}, \"passed\": {}, \"detail\": \"{}\"}}{comma}\n",
            json_escape(&sw.name),
            sw.lanes,
            sw.points,
            sw.passed,
            json_escape(&sw.detail)
        ));
    }
    s.push_str("  ],\n");

    s.push_str(&coverage_to_json(&report.coverage, "  "));
    s.push_str("}\n");
    s
}

/// Renders an [`AbortCoverage`] as the `abort_coverage` JSON member
/// (shared between `conform --json` and `gen --check --json`).
#[must_use]
pub fn coverage_to_json(cov: &AbortCoverage, indent: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!("{indent}\"abort_coverage\": {{\n"));
    s.push_str(&format!("{indent}  \"by_family\": {{\n"));
    for (i, (family, tags)) in cov.by_family.iter().enumerate() {
        let comma = if i + 1 < cov.by_family.len() { "," } else { "" };
        let inner: Vec<String> = tags
            .iter()
            .map(|(t, n)| format!("\"{}\": {n}", json_escape(t)))
            .collect();
        s.push_str(&format!(
            "{indent}    \"{}\": {{{}}}{comma}\n",
            json_escape(family),
            inner.join(", ")
        ));
    }
    s.push_str(&format!("{indent}  }},\n"));
    let uncov: Vec<String> = cov
        .uncovered
        .iter()
        .map(|t| format!("\"{}\"", json_escape(t)))
        .collect();
    s.push_str(&format!(
        "{indent}  \"uncovered\": [{}],\n",
        uncov.join(", ")
    ));
    s.push_str(&format!("{indent}  \"exempt\": [\n"));
    for (i, (tag, why)) in cov.exempt.iter().enumerate() {
        let comma = if i + 1 < cov.exempt.len() { "," } else { "" };
        s.push_str(&format!(
            "{indent}    {{\"tag\": \"{}\", \"why\": \"{}\"}}{comma}\n",
            json_escape(tag),
            json_escape(why)
        ));
    }
    s.push_str(&format!("{indent}  ]\n"));
    s.push_str(&format!("{indent}}}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(jobs: usize) -> ConformOptions {
        ConformOptions {
            seed: 0xC0FFEE,
            cases: 8,
            jobs,
            shrink: true,
        }
    }

    #[test]
    fn small_run_passes_and_is_deterministic_across_jobs() {
        let serial = run_conform(&small_opts(1));
        assert!(serial.passed(), "failures: {:?}", serial.failures);
        let parallel = run_conform(&small_opts(4));
        assert_eq!(
            report_to_json(&serial),
            report_to_json(&parallel),
            "JSON must be byte-identical at any --jobs"
        );
    }

    #[test]
    fn report_json_shape() {
        let report = run_conform(&ConformOptions {
            cases: 3,
            ..small_opts(2)
        });
        let json = report_to_json(&report);
        assert!(json.contains("\"schema\": \"conform-v1\""));
        assert!(json.contains("\"abort_sweep\""));
        assert!(json.contains("sweep_sat"));
        assert!(json.contains("sweep_red"));
        assert!(json.contains("\"abort_coverage\""));
        // No timing anywhere: reruns must be byte-identical.
        assert!(!json.contains("seconds") && !json.contains("jobs"));
    }

    #[test]
    fn every_run_covers_every_reachable_abort_tag() {
        // Even a tiny run appends the per-family coverage witnesses, so
        // the uncovered list is empty for any seed and case count.
        let report = run_conform(&small_opts(2));
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(
            report.coverage.uncovered,
            Vec::<String>::new(),
            "coverage: {:?}",
            report.coverage.by_family
        );
        // 12 illegal families + the sweep credit, at minimum (legal
        // cases may add a "legal" family when any width aborts).
        assert!(report.coverage.by_family.len() >= 13);
        let exempt: Vec<&str> = report
            .coverage
            .exempt
            .iter()
            .map(|(t, _)| t.as_str())
            .collect();
        assert_eq!(exempt, ["iteration-mismatch"]);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
