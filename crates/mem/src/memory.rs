//! Flat little-endian functional memory.

use std::error::Error;
use std::fmt;

/// What made a memory access fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemErrorKind {
    /// The access falls (partly) outside the mapped window.
    OutOfRange,
    /// The access width is not 1, 2, or 4 bytes — a malformed instruction
    /// (e.g. fuzz-generated) rather than a wild address.
    UnsupportedSize,
}

/// A faulting memory access: out of range or of unsupported width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemError {
    /// The faulting byte address.
    pub addr: u32,
    /// Access size in bytes.
    pub size: u32,
    /// Whether it was a write.
    pub write: bool,
    /// What went wrong.
    pub kind: MemErrorKind,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = if self.write { "write" } else { "read" };
        match self.kind {
            MemErrorKind::OutOfRange => write!(
                f,
                "{dir} of {} bytes at {:#010x} is outside mapped memory",
                self.size, self.addr
            ),
            MemErrorKind::UnsupportedSize => write!(
                f,
                "{dir} at {:#010x} uses unsupported access size {} (must be 1, 2, or 4)",
                self.addr, self.size
            ),
        }
    }
}

impl Error for MemError {}

/// A flat byte-addressable memory region mapped at a base address.
///
/// All multi-byte accesses are little-endian. Accesses outside the mapped
/// window return [`MemError`] rather than panicking, so the simulator can
/// report wild addresses as simulation faults.
#[derive(Clone, Debug)]
pub struct Memory {
    base: u32,
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory window of `size` bytes mapped at `base`.
    #[must_use]
    pub fn new(base: u32, size: usize) -> Memory {
        Memory {
            base,
            bytes: vec![0; size],
        }
    }

    /// Creates a memory window initialised with an image (e.g. a program's
    /// data segment), padded with `extra` zero bytes of headroom.
    #[must_use]
    pub fn with_image(base: u32, image: &[u8], extra: usize) -> Memory {
        let mut bytes = image.to_vec();
        bytes.resize(image.len() + extra, 0);
        Memory { base, bytes }
    }

    /// The base address of the mapped window.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The size of the mapped window in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn offset(&self, addr: u32, size: u32, write: bool) -> Result<usize, MemError> {
        let err = MemError {
            addr,
            size,
            write,
            kind: MemErrorKind::OutOfRange,
        };
        let off = addr.checked_sub(self.base).ok_or(err)? as usize;
        let end = off.checked_add(size as usize).ok_or(err)?;
        if end > self.bytes.len() {
            return Err(err);
        }
        Ok(off)
    }

    fn check_size(addr: u32, size: u32, write: bool) -> Result<(), MemError> {
        if matches!(size, 1 | 2 | 4) {
            Ok(())
        } else {
            Err(MemError {
                addr,
                size,
                write,
                kind: MemErrorKind::UnsupportedSize,
            })
        }
    }

    /// Reads `size` (1, 2, or 4) bytes at `addr`, zero-extended to `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access falls outside the window or uses
    /// an unsupported size.
    pub fn read(&self, addr: u32, size: u32) -> Result<u32, MemError> {
        Memory::check_size(addr, size, false)?;
        let off = self.offset(addr, size, false)?;
        Ok(match size {
            1 => u32::from(self.bytes[off]),
            2 => u32::from(u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])),
            _ => u32::from_le_bytes([
                self.bytes[off],
                self.bytes[off + 1],
                self.bytes[off + 2],
                self.bytes[off + 3],
            ]),
        })
    }

    /// Reads with sign extension from the access width to `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access falls outside the window.
    pub fn read_signed(&self, addr: u32, size: u32) -> Result<i32, MemError> {
        let raw = self.read(addr, size)?;
        Ok(match size {
            1 => i32::from(raw as u8 as i8),
            2 => i32::from(raw as u16 as i16),
            4 => raw as i32,
            _ => unreachable!(),
        })
    }

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access falls outside the window or uses
    /// an unsupported size.
    pub fn write(&mut self, addr: u32, size: u32, value: u32) -> Result<(), MemError> {
        Memory::check_size(addr, size, true)?;
        let off = self.offset(addr, size, true)?;
        let le = value.to_le_bytes();
        self.bytes[off..off + size as usize].copy_from_slice(&le[..size as usize]);
        Ok(())
    }

    /// Reads an `f32` (stored as its IEEE-754 bits).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access falls outside the window.
    pub fn read_f32(&self, addr: u32) -> Result<f32, MemError> {
        Ok(f32::from_bits(self.read(addr, 4)?))
    }

    /// Writes an `f32` (as its IEEE-754 bits).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the access falls outside the window.
    pub fn write_f32(&mut self, addr: u32, value: f32) -> Result<(), MemError> {
        self.write(addr, 4, value.to_bits())
    }

    /// Borrows a raw byte range (for test assertions and gold comparisons).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range falls outside the window.
    pub fn slice(&self, addr: u32, len: usize) -> Result<&[u8], MemError> {
        let off = self.offset(addr, len as u32, false)?;
        Ok(&self.bytes[off..off + len])
    }

    /// Borrows a raw byte range mutably (bulk store fast paths: callers
    /// that would otherwise issue `len` adjacent [`Memory::write`]s).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range falls outside the window.
    pub fn slice_mut(&mut self, addr: u32, len: usize) -> Result<&mut [u8], MemError> {
        let off = self.offset(addr, len as u32, true)?;
        Ok(&mut self.bytes[off..off + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrips() {
        let mut m = Memory::new(0x1000, 64);
        m.write(0x1000, 4, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read(0x1000, 4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read(0x1000, 1).unwrap(), 0xEF);
        assert_eq!(m.read(0x1001, 1).unwrap(), 0xBE);
        assert_eq!(m.read(0x1000, 2).unwrap(), 0xBEEF);
    }

    #[test]
    fn sign_extension() {
        let mut m = Memory::new(0, 16);
        m.write(0, 1, 0x80).unwrap();
        assert_eq!(m.read_signed(0, 1).unwrap(), -128);
        assert_eq!(m.read(0, 1).unwrap(), 128);
        m.write(4, 2, 0xFFFF).unwrap();
        assert_eq!(m.read_signed(4, 2).unwrap(), -1);
    }

    #[test]
    fn floats() {
        let mut m = Memory::new(0x100, 16);
        m.write_f32(0x104, -3.75).unwrap();
        assert_eq!(m.read_f32(0x104).unwrap(), -3.75);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut m = Memory::new(0x1000, 8);
        assert!(m.read(0xFFF, 1).is_err());
        assert!(m.read(0x1006, 4).is_err());
        assert!(m.write(0x1008, 1, 0).is_err());
        // Wrap-around addresses must not panic.
        assert!(m.read(u32::MAX, 4).is_err());
        let e = m.read(0x2000, 4).unwrap_err();
        assert_eq!(e.addr, 0x2000);
        assert!(!e.write);
        assert_eq!(e.kind, MemErrorKind::OutOfRange);
    }

    #[test]
    fn unsupported_size_is_an_error_not_a_panic() {
        let mut m = Memory::new(0x1000, 64);
        for bad in [0, 3, 5, 8, 64] {
            let e = m.read(0x1000, bad).unwrap_err();
            assert_eq!(e.kind, MemErrorKind::UnsupportedSize);
            assert_eq!(e.size, bad);
            assert!(!e.write);
            let e = m.write(0x1000, bad, 7).unwrap_err();
            assert_eq!(e.kind, MemErrorKind::UnsupportedSize);
            assert!(e.write);
        }
        // The size check fires even when the address would also be wild.
        let e = m.read(0x9000, 3).unwrap_err();
        assert_eq!(e.kind, MemErrorKind::UnsupportedSize);
        assert!(e.to_string().contains("unsupported access size 3"));
    }

    #[test]
    fn image_and_headroom() {
        let m = Memory::with_image(0x10, &[1, 2, 3], 5);
        assert_eq!(m.size(), 8);
        assert_eq!(m.read(0x10, 1).unwrap(), 1);
        assert_eq!(m.read(0x12, 1).unwrap(), 3);
        assert_eq!(m.read(0x13, 1).unwrap(), 0);
        assert_eq!(m.slice(0x10, 3).unwrap(), &[1, 2, 3]);
    }
}
