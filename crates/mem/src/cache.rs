//! Timing-only set-associative cache with true-LRU replacement.

use std::fmt;

use liquid_simd_trace::{CacheKind, TraceEvent, Tracer};

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Extra cycles charged on a miss (fill latency from the next level).
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// The ARM-926EJ-S configuration used throughout the paper's evaluation:
    /// 16 KB, 64-way set-associative, 32-byte lines (§5).
    #[must_use]
    pub fn arm926_16k() -> CacheConfig {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 64,
            line_bytes: 32,
            miss_penalty: 30,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not power-of-two
    /// shaped.
    #[must_use]
    pub fn sets(&self) -> u32 {
        assert!(self.line_bytes.is_power_of_two(), "line size power of two");
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(lines % self.ways, 0, "ways must divide line count");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::arm926_16k()
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses(),
            self.miss_rate() * 100.0
        )
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u32,
    valid: bool,
    /// Monotonic timestamp of the last touch, for true LRU.
    last_use: u64,
}

/// A set-associative cache timing model.
///
/// [`Cache::access`] classifies an access as hit or miss, updates residency
/// and LRU state, and returns the hit flag; the caller charges
/// [`CacheConfig::miss_penalty`] for misses.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: u32,
    ways: Vec<Way>,
    tick: u64,
    stats: CacheStats,
    /// Optional event recorder; set with [`Cache::attach_tracer`]. Without
    /// it, the access path pays one branch.
    tracer: Option<(Tracer, CacheKind)>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            config,
            sets,
            ways: vec![Way::default(); (sets * config.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
            tracer: None,
        }
    }

    /// Attaches a tracer; every miss then emits a
    /// [`TraceEvent::CacheMiss`] tagged with `kind`.
    pub fn attach_tracer(&mut self, tracer: Tracer, kind: CacheKind) {
        self.tracer = Some((tracer, kind));
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, addr: u32) -> (std::ops::Range<usize>, u32) {
        let line = addr / self.config.line_bytes;
        let set = line % self.sets;
        let tag = line / self.sets;
        let start = (set * self.config.ways) as usize;
        (start..start + self.config.ways as usize, tag)
    }

    /// Accesses one byte address; returns `true` on a hit. Both reads and
    /// writes allocate (write-allocate, which is what the timing model of a
    /// write-back cache needs).
    pub fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let (range, tag) = self.set_range(addr);
        let ways = &mut self.ways[range];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.tick;
            self.stats.hits += 1;
            return true;
        }
        // Miss: fill into the invalid or least-recently-used way.
        if let Some((tracer, kind)) = &self.tracer {
            tracer.emit(TraceEvent::CacheMiss { cache: *kind, addr });
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("cache has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.last_use = self.tick;
        false
    }

    /// Accesses a byte *range* (e.g. a `W`-element vector load): touches
    /// every line the range covers and returns the number of lines that
    /// missed. Vector memory operations use this — a 16-element `f32` vector
    /// spans two or three 32-byte lines.
    pub fn access_range(&mut self, addr: u32, len: u32) -> u32 {
        if len == 0 {
            return 0;
        }
        let first = addr / self.config.line_bytes;
        let last = (addr + len - 1) / self.config.line_bytes;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line * self.config.line_bytes) {
                misses += 1;
            }
        }
        misses
    }

    /// Whether an address is currently resident (no state change).
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let (range, tag) = self.set_range(addr);
        self.ways[range].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates everything (e.g. on simulated context switch).
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
            miss_penalty: 10,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::arm926_16k().sets(), 8);
        assert_eq!(tiny().config().sets(), 2);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x00));
        assert!(c.access(0x04)); // same line
        assert!(c.access(0x0F));
        assert!(!c.access(0x10)); // next line, different set
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set 0 holds lines with (line % 2 == 0): addresses 0x00, 0x20, 0x40.
        assert!(!c.access(0x00));
        assert!(!c.access(0x20));
        assert!(c.access(0x00)); // touch: 0x20 is now LRU
        assert!(!c.access(0x40)); // evicts 0x20
        assert!(c.access(0x00));
        assert!(!c.access(0x20)); // was evicted
    }

    #[test]
    fn range_access_counts_lines() {
        let mut c = tiny();
        assert_eq!(c.access_range(0x08, 16), 2); // spans lines 0 and 1
        assert_eq!(c.access_range(0x08, 16), 0); // both resident now
        assert_eq!(c.access_range(0x00, 1), 0);
        assert_eq!(c.access_range(0x00, 0), 0);
    }

    #[test]
    fn probe_and_flush() {
        let mut c = tiny();
        c.access(0x00);
        assert!(c.probe(0x0C));
        c.flush();
        assert!(!c.probe(0x0C));
    }

    #[test]
    fn working_set_behaviour_matches_capacity() {
        // A working set larger than capacity never stops missing under LRU
        // with a cyclic scan (the 179.art scenario in miniature).
        let mut c = tiny();
        let lines = 8u32; // 128 bytes > 64-byte capacity
        let mut misses = 0;
        for round in 0..4 {
            for i in 0..lines {
                if !c.access(i * 16) {
                    misses += 1;
                }
            }
            if round > 0 {
                // Steady state: every access misses (cyclic scan + LRU).
            }
        }
        assert_eq!(misses, 32);

        // A working set that fits stops missing after the first pass.
        let mut c = tiny();
        let mut misses = 0;
        for _ in 0..4 {
            for i in 0..4u32 {
                if !c.access(i * 16) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 4);
    }
}
