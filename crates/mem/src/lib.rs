//! Memory-system models for the Liquid SIMD simulator.
//!
//! Two components:
//!
//! * [`Memory`] — a flat, little-endian, byte-addressable functional memory
//!   with typed accessors (a program's data segment is loaded here).
//! * [`Cache`] — a timing-only set-associative cache with true-LRU
//!   replacement, configured by [`CacheConfig`]. The paper's evaluation uses
//!   an ARM-926EJ-S with 16 KB, 64-way instruction and data caches
//!   ([`CacheConfig::arm926_16k`]).
//!
//! Caches here are *timing* models: they track which lines are resident to
//! classify accesses as hits or misses, while data always comes from the
//! functional [`Memory`]. This mirrors how SimpleScalar's cache hierarchy is
//! used in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod memory;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use memory::{MemError, MemErrorKind, Memory};
