//! End-to-end tests of the Liquid SIMD path through the simulator: an
//! outlined scalar loop is translated post-retirement, lands in the
//! microcode cache, and subsequent calls execute SIMD microcode with
//! bit-identical memory effects.

use liquid_simd_isa::asm;
use liquid_simd_sim::{CallMode, Machine, MachineConfig};

/// A driver that calls an outlined kernel `CALLS` times. The kernel adds 1
/// to every element of an 16-element array.
const ADD_ONE: &str = r"
.data
.i32 A: 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0

.text
main:
    mov r5, #0
again:
    bl.v kernel
    add r5, r5, #1
    cmp r5, #6
    blt again
    halt
kernel:
    mov r0, #0
top:
    ldw r1, [A + r0]
    add r1, r1, #1
    stw [A + r0], r1
    add r0, r0, #1
    cmp r0, #16
    blt top
    ret
";

#[test]
fn translation_produces_identical_memory() {
    let p = asm::assemble(ADD_ONE).unwrap();
    let (_, sym) = p.symbol_by_name("A").unwrap();

    // Scalar-only reference run.
    let mut scalar = Machine::new(&p, MachineConfig::scalar_only());
    let scalar_report = scalar.run().unwrap();

    // Liquid run at 4 lanes.
    let mut liquid = Machine::new(&p, MachineConfig::liquid(4));
    let liquid_report = liquid.run().unwrap();

    for i in 0..16 {
        let a = scalar.memory().read(sym.addr + i * 4, 4).unwrap();
        let b = liquid.memory().read(sym.addr + i * 4, 4).unwrap();
        assert_eq!(a, 6, "every element incremented 6 times");
        assert_eq!(a, b, "element {i} differs");
    }

    // The first call runs scalar (translating); later calls hit microcode.
    assert_eq!(liquid_report.translator.successes, 1);
    assert!(
        liquid_report.mcache.hits >= 4,
        "mcache hits: {:?}",
        liquid_report.mcache
    );
    assert!(liquid_report.vector_retired > 0);
    assert!(
        liquid_report.cycles < scalar_report.cycles,
        "liquid ({}) should beat scalar ({})",
        liquid_report.cycles,
        scalar_report.cycles
    );

    // Call log shows the mode transition.
    let calls: Vec<CallMode> = liquid_report.calls.iter().map(|c| c.mode).collect();
    assert_eq!(calls[0], CallMode::Scalar);
    assert_eq!(*calls.last().unwrap(), CallMode::Microcode);
}

#[test]
fn wider_accelerators_run_faster() {
    let p = asm::assemble(ADD_ONE).unwrap();
    let mut cycles = Vec::new();
    for lanes in [2usize, 4, 8, 16] {
        let mut m = Machine::new(&p, MachineConfig::liquid(lanes));
        let r = m.run().unwrap();
        assert_eq!(r.translator.successes, 1, "lanes {lanes}");
        cycles.push(r.cycles);
    }
    // Non-strict monotonicity: wider never slower on this kernel.
    for w in cycles.windows(2) {
        assert!(w[1] <= w[0], "cycles not improving: {cycles:?}");
    }
}

#[test]
fn trip_not_multiple_of_lanes_aborts_and_stays_scalar() {
    // 16 iterations at 16 lanes is fine, but a trip of 12 at 8 lanes must
    // abort translation and keep running correct scalar code.
    let src = ADD_ONE.replace("cmp r0, #16", "cmp r0, #12");
    let p = asm::assemble(&src).unwrap();
    let (_, sym) = p.symbol_by_name("A").unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().unwrap();
    assert_eq!(report.translator.successes, 0);
    assert_eq!(
        report.translator.aborts.get("trip-not-multiple").copied(),
        Some(1),
        "aborts: {:?}",
        report.translator.aborts
    );
    // Only the first call attempts translation; the failure is remembered.
    assert_eq!(report.translator.attempts, 1);
    for i in 0..12 {
        assert_eq!(m.memory().read(sym.addr + i * 4, 4).unwrap(), 6);
    }
}

#[test]
fn non_kernel_function_is_rejected_as_no_loop() {
    // A plain helper without a loop: translation aborts with `no-loop`
    // (the paper's false-positive discussion, §3.5).
    let src = r"
.data
.i32 X: 7

.text
main:
    bl.v helper
    bl.v helper
    halt
helper:
    mov r0, #0
    ldw r1, [X + r0]
    add r1, r1, #1
    stw [X + r0], r1
    ret
";
    let p = asm::assemble(src).unwrap();
    let (_, sym) = p.symbol_by_name("X").unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(8));
    let report = m.run().unwrap();
    assert_eq!(report.translator.successes, 0);
    assert_eq!(report.translator.aborts.get("no-loop").copied(), Some(1));
    assert_eq!(m.memory().read(sym.addr, 4).unwrap(), 9);
}

#[test]
fn reduction_kernel_translates() {
    let src = r"
.data
.i32 A: 9, 3, 17, 1, 4, 12, 6, 8
.i32 out: 0

.text
main:
    bl.v minred
    bl.v minred
    bl.v minred
    halt
minred:
    mov r1, #9999
    mov r0, #0
top:
    ldw r2, [A + r0]
    min r1, r1, r2
    add r0, r0, #1
    cmp r0, #8
    blt top
    mov r3, #0
    stw [out + r3], r1
    ret
";
    let p = asm::assemble(src).unwrap();
    let (_, out) = p.symbol_by_name("out").unwrap();
    let mut m = Machine::new(&p, MachineConfig::liquid(4));
    let report = m.run().unwrap();
    assert_eq!(
        report.translator.successes, 1,
        "aborts: {:?}",
        report.translator.aborts
    );
    assert_eq!(m.memory().read_signed(out.addr, 4).unwrap(), 1);
    assert!(report.mcache.hits >= 1);
}

#[test]
fn jit_mode_charges_translation_stall() {
    let p = asm::assemble(ADD_ONE).unwrap();
    let mut hw_cfg = MachineConfig::liquid(4);
    hw_cfg.translation.cycles_per_instr = 1;
    let hw = Machine::new(&p, hw_cfg).run().unwrap();

    let mut jit_cfg = MachineConfig::liquid(4);
    jit_cfg.translation.jit = true;
    jit_cfg.translation.jit_cycles_per_instr = 200;
    let jit = Machine::new(&p, jit_cfg).run().unwrap();

    assert_eq!(jit.translator.successes, 1);
    assert!(
        jit.cycles > hw.cycles,
        "jit stall should cost cycles: jit={} hw={}",
        jit.cycles,
        hw.cycles
    );
}

#[test]
fn interrupts_abort_translation_externally() {
    let p = asm::assemble(ADD_ONE).unwrap();
    let mut cfg = MachineConfig::liquid(4);
    cfg.interrupt_every = 20; // interrupt mid-translation, repeatedly
    let mut m = Machine::new(&p, cfg);
    let report = m.run().unwrap();
    // External aborts retry on later calls; depending on spacing some
    // translation may eventually finish, but at least one abort happened.
    assert!(
        report
            .translator
            .aborts
            .get("external")
            .copied()
            .unwrap_or(0)
            >= 1,
        "aborts: {:?}",
        report.translator.aborts
    );
    // Memory still correct.
    let (_, sym) = p.symbol_by_name("A").unwrap();
    assert_eq!(m.memory().read(sym.addr, 4).unwrap(), 6);
}

#[test]
fn plain_bl_not_translated_unless_heuristic_enabled() {
    let src = ADD_ONE.replace("bl.v kernel", "bl kernel");
    let p = asm::assemble(&src).unwrap();

    let mut m = Machine::new(&p, MachineConfig::liquid(4));
    let report = m.run().unwrap();
    assert_eq!(report.translator.attempts, 0);

    let mut cfg = MachineConfig::liquid(4);
    cfg.translation.translate_plain_bl = true;
    let mut m = Machine::new(&p, cfg);
    let report = m.run().unwrap();
    assert_eq!(report.translator.successes, 1);
    assert!(report.mcache.hits >= 1);
}
