//! Metadata-table equivalence: the predecoded [`InstMeta`] side tables the
//! machine executes from must always agree with fresh per-instruction
//! derivation (`collect_uses` / `def_of` / `latency_of`) — for every
//! encodable instruction, at every lane count, and for every microcode
//! sequence the machine inserts (and evicts) at runtime.
//!
//! Random instructions come from a small inline xorshift generator (the
//! workspace is dependency-free, so no external PRNG); every case is
//! reproducible from its printed seed.

use liquid_simd_compiler::build_liquid;
use liquid_simd_isa::{
    AluOp, Base, Cond, ElemType, FReg, FpOp, Inst, MemWidth, Operand2, PermKind, RedOp, Reg,
    ScalarInst, ScalarSrc, SymId, VAluOp, VReg, VectorInst,
};
use liquid_simd_sim::meta::{collect_uses, def_of, latency_of, meta_of_code, InstMeta};
use liquid_simd_sim::{LatencyModel, Machine, MachineConfig};

const CASES: u64 = 4096;

/// Inline xorshift64* — enough randomness for instruction fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn index(&mut self, len: usize) -> usize {
        (self.next() % len as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.index(items.len())]
    }
}

fn reg(rng: &mut Rng) -> Reg {
    Reg::of(rng.index(16) as u8)
}

fn freg(rng: &mut Rng) -> FReg {
    FReg::of(rng.index(16) as u8)
}

fn vreg(rng: &mut Rng) -> VReg {
    VReg::of(rng.index(16) as u8)
}

fn base(rng: &mut Rng) -> Base {
    if rng.bool() {
        Base::Reg(reg(rng))
    } else {
        Base::Sym(SymId::new(rng.index(8) as u16))
    }
}

fn operand2(rng: &mut Rng) -> Operand2 {
    if rng.bool() {
        Operand2::Reg(reg(rng))
    } else {
        Operand2::Imm(rng.index(256) as i32 - 128)
    }
}

fn valu_with_elem(rng: &mut Rng) -> (VAluOp, ElemType) {
    loop {
        let op = rng.pick(&VAluOp::ALL);
        let e = rng.pick(&ElemType::ALL);
        if op.valid_for(e) {
            return (op, e);
        }
    }
}

/// One random instruction covering every `Inst` variant, including the
/// control-flow forms the encode property test routes through programs.
fn random_inst(rng: &mut Rng) -> Inst {
    if rng.bool() {
        Inst::S(match rng.index(16) {
            0 => ScalarInst::MovImm {
                cond: rng.pick(&Cond::ALL),
                rd: reg(rng),
                imm: rng.index(1024) as i32 - 512,
            },
            1 => ScalarInst::Mov {
                cond: rng.pick(&Cond::ALL),
                rd: reg(rng),
                rm: reg(rng),
            },
            2 => ScalarInst::Alu {
                cond: rng.pick(&Cond::ALL),
                op: rng.pick(&AluOp::ALL),
                rd: reg(rng),
                rn: reg(rng),
                op2: operand2(rng),
            },
            3 => ScalarInst::Cmp {
                rn: reg(rng),
                op2: operand2(rng),
            },
            4 => ScalarInst::FAlu {
                op: rng.pick(&FpOp::ALL),
                fd: freg(rng),
                fn_: freg(rng),
                fm: freg(rng),
            },
            5 => ScalarInst::FMov {
                cond: rng.pick(&Cond::ALL),
                fd: freg(rng),
                fm: freg(rng),
            },
            6 => ScalarInst::LdInt {
                width: rng.pick(&MemWidth::ALL),
                signed: rng.bool(),
                rd: reg(rng),
                base: base(rng),
                index: reg(rng),
            },
            7 => ScalarInst::StInt {
                width: rng.pick(&MemWidth::ALL),
                rs: reg(rng),
                base: base(rng),
                index: reg(rng),
            },
            8 => ScalarInst::LdF {
                fd: freg(rng),
                base: base(rng),
                index: reg(rng),
            },
            9 => ScalarInst::StF {
                fs: freg(rng),
                base: base(rng),
                index: reg(rng),
            },
            10 => ScalarInst::B {
                cond: rng.pick(&Cond::ALL),
                target: rng.index(4096) as u32,
            },
            11 => ScalarInst::Bl {
                target: rng.index(4096) as u32,
                vectorizable: rng.bool(),
            },
            12 => ScalarInst::Ret,
            13 => ScalarInst::Halt,
            _ => ScalarInst::Nop,
        })
    } else {
        Inst::V(match rng.index(9) {
            0 => VectorInst::VLd {
                elem: rng.pick(&ElemType::ALL),
                signed: rng.bool(),
                vd: vreg(rng),
                base: base(rng),
                index: reg(rng),
            },
            1 => VectorInst::VSt {
                elem: rng.pick(&ElemType::ALL),
                vs: vreg(rng),
                base: base(rng),
                index: reg(rng),
            },
            2 => {
                let (op, elem) = valu_with_elem(rng);
                VectorInst::VAlu {
                    op,
                    elem,
                    vd: vreg(rng),
                    vn: vreg(rng),
                    vm: vreg(rng),
                }
            }
            3 => {
                let (op, elem) = valu_with_elem(rng);
                VectorInst::VAluImm {
                    op,
                    elem,
                    vd: vreg(rng),
                    vn: vreg(rng),
                    imm: rng.index(64) as i32 - 32,
                }
            }
            4 => {
                let (op, elem) = valu_with_elem(rng);
                VectorInst::VAluConst {
                    op,
                    elem,
                    vd: vreg(rng),
                    vn: vreg(rng),
                    cnst: SymId::new(rng.index(8) as u16),
                }
            }
            5 => {
                let (op, elem) = valu_with_elem(rng);
                VectorInst::VAluScalar {
                    op,
                    elem,
                    vd: vreg(rng),
                    vn: vreg(rng),
                    src: if rng.bool() {
                        ScalarSrc::R(reg(rng))
                    } else {
                        ScalarSrc::F(freg(rng))
                    },
                }
            }
            6 => VectorInst::VRedI {
                op: rng.pick(&[RedOp::Min, RedOp::Max, RedOp::Sum]),
                elem: rng.pick(&ElemType::ALL),
                rd: reg(rng),
                vn: vreg(rng),
            },
            7 => VectorInst::VRedF {
                op: rng.pick(&[RedOp::Min, RedOp::Max, RedOp::Sum]),
                fd: freg(rng),
                vn: vreg(rng),
            },
            _ => {
                let block = rng.pick(&[2u8, 4, 8, 16]);
                VectorInst::VPerm {
                    kind: match rng.index(3) {
                        0 => PermKind::Bfly { block },
                        1 => PermKind::Rev { block },
                        _ => PermKind::Rot {
                            block,
                            amt: 1 + rng.index(usize::from(block) - 1) as u8,
                        },
                    },
                    elem: rng.pick(&ElemType::ALL),
                    vd: vreg(rng),
                    vn: vreg(rng),
                }
            }
        })
    }
}

fn random_latency_model(rng: &mut Rng) -> LatencyModel {
    LatencyModel {
        int_alu: 1 + rng.index(4) as u32,
        int_mul: 1 + rng.index(8) as u32,
        fp_alu: 1 + rng.index(8) as u32,
        fp_mul: 1 + rng.index(8) as u32,
        fp_div: 1 + rng.index(30) as u32,
        load: 1 + rng.index(4) as u32,
        branch_taken: 1 + rng.index(4) as u32,
    }
}

/// The precomputed table entry must equal fresh derivation for every
/// encodable instruction at every lane count, and its `srcs` must be
/// packed (scoreboard iteration stops at the first `None`).
#[test]
fn meta_matches_fresh_derivation_for_random_instructions() {
    let seed = 0xC0FF_EE00_D15C_0B01u64;
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        let inst = random_inst(&mut rng);
        let lat = random_latency_model(&mut rng);
        let lanes = rng.pick(&[0usize, 2, 4, 8, 16]);
        let m = InstMeta::compute(&inst, &lat, lanes);
        let ctx = format!("seed {seed:#x} case {case}: {inst:?} at {lanes} lanes");
        let (def, flags) = def_of(&inst);
        assert_eq!(m.srcs, collect_uses(&inst), "srcs mismatch: {ctx}");
        assert_eq!(m.def, def, "def mismatch: {ctx}");
        assert_eq!(m.writes_flags, flags, "flags mismatch: {ctx}");
        assert_eq!(
            m.latency,
            latency_of(&inst, &lat, lanes),
            "latency mismatch: {ctx}"
        );
        assert_eq!(m.vector, inst.is_vector(), "vector mismatch: {ctx}");
        assert!(m.latency > 0, "zero latency: {ctx}");
        let first_none = m.srcs.iter().position(Option::is_none).unwrap_or(6);
        assert!(
            m.srcs[first_none..].iter().all(Option::is_none),
            "srcs not packed: {ctx}"
        );
        // Table construction must agree with element-wise construction.
        let table = meta_of_code(&[inst], &lat, lanes);
        assert_eq!(table, vec![m], "meta_of_code mismatch: {ctx}");
    }
}

/// After real runs — translation inserting microcode, LRU evicting it, and
/// preloaded (built-in ISA) microcode — every table the machine executes
/// from must still match fresh recomputation.
#[test]
fn machine_tables_stay_consistent_through_mcache_lifecycle() {
    for w in liquid_simd_workloads::smoke() {
        let b = build_liquid(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));

        // Tight microcode cache: forces evictions (swap_remove reordering)
        // while the run is still inserting fresh translations.
        let mut cfg = MachineConfig::liquid(8);
        cfg.mcache_entries = 2;
        let mut m = Machine::new(&b.program, cfg);
        let report = m.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(report.halted);
        assert!(
            m.metadata_consistent(),
            "{}: table diverged after translated run",
            w.name
        );

        // Preloaded microcode (the paper's built-in-ISA comparator).
        let snapshot = m.microcode_snapshot();
        let mut pre = Machine::new(&b.program, MachineConfig::liquid(8));
        pre.preload_microcode(&snapshot);
        assert!(
            pre.metadata_consistent(),
            "{}: table diverged after preload",
            w.name
        );
        pre.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            pre.metadata_consistent(),
            "{}: table diverged after preloaded run",
            w.name
        );
    }
}
