//! Pluggable execution backends for [`Machine::run`].
//!
//! A backend is an *implementation strategy* for the fetch/issue/exec/
//! retire loop, never an architectural choice: every backend must produce
//! bit-identical architectural state, cycle counts, and reports. Two
//! backends ship:
//!
//! - [`InterpBackend`] — the reference interpreter, one
//!   [`Machine::step`] per instruction.
//! - [`SuperblockBackend`] — pre-lowers straight-line runs (program stream
//!   and microcode alike) into threaded-code blocks (see [`crate::block`])
//!   and replays them from a block cache keyed by `(stream, start PC,
//!   code generation)`. Program code is immutable, so program blocks live
//!   forever; microcode blocks are keyed by the microcode cache's
//!   per-insert generation and dropped the moment the entry is evicted,
//!   overwritten, or flushed (tracked by the mcache epoch), so
//!   translation/abort/retry semantics are untouched.
//!
//! The superblock backend single-steps (counted per reason in
//! [`BlockStats`]) whenever block execution could observably diverge: a
//! tracer is attached (per-step event stamps), interrupt injection is
//! configured (exact retire indices), the translator has an open window
//! (its tap observes every program-stream retire), or the next instruction
//! is control flow (always interpreted; this is also where calls,
//! translation begins, and microcode entry/exit happen).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::rc::Rc;

use crate::block::{discover, exec_block, needs_interp, Block};
use crate::exec::SimError;
use crate::machine::{Machine, Stream};
use crate::report::BlockStats;

/// An execution engine driving a [`Machine`] to completion.
pub trait ExecBackend {
    /// Executes at least one instruction; returns `true` on halt.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on simulation faults, exactly as
    /// [`Machine::run`] documents.
    fn dispatch(&mut self, m: &mut Machine<'_>) -> Result<bool, SimError>;

    /// Superblock telemetry (all zeros for backends without a block cache).
    fn block_stats(&self) -> BlockStats {
        BlockStats::default()
    }
}

/// Enforces the cycle limit exactly like the interpreter's run loop
/// (checked before every step), then steps once.
fn checked_step(m: &mut Machine<'_>) -> Result<bool, SimError> {
    if m.cycle > m.config.max_cycles {
        return Err(SimError::Fault {
            pc: m.current_pc(),
            what: format!("cycle limit {} exceeded", m.config.max_cycles),
        });
    }
    m.step()
}

/// The reference interpreter backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpBackend;

impl ExecBackend for InterpBackend {
    fn dispatch(&mut self, m: &mut Machine<'_>) -> Result<bool, SimError> {
        checked_step(m)
    }
}

/// Identity of a lowered block: where its code lives and which immutable
/// image it was lowered from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum BlockKey {
    /// Program stream — the binary never changes, so the PC suffices.
    Prog { pc: u32 },
    /// Microcode — `gen` is the mcache's per-insert generation stamp, so a
    /// retranslated (overwritten) or evicted-and-refilled entry never
    /// aliases stale lowered code.
    Micro { func_pc: u32, gen: u64, pos: u32 },
}

/// The superblock execution backend (see the module docs).
#[derive(Debug, Default)]
pub struct SuperblockBackend {
    cache: HashMap<BlockKey, Rc<Block>>,
    stats: BlockStats,
    /// Mcache epoch the block cache was last reconciled against.
    synced_epoch: u64,
}

impl SuperblockBackend {
    /// Creates an empty backend (blocks are lowered on first dispatch).
    #[must_use]
    pub fn new() -> SuperblockBackend {
        SuperblockBackend::default()
    }

    /// Drops lowered microcode blocks whose source entry is gone. The
    /// mcache bumps its epoch on every insert, overwrite, eviction, and
    /// flush, so this runs only when microcode actually changed.
    fn sync_invalidations(&mut self, m: &Machine<'_>) {
        let epoch = m.mcache.epoch();
        if epoch == self.synced_epoch {
            return;
        }
        let before = self.cache.len();
        self.cache.retain(|k, _| match k {
            BlockKey::Prog { .. } => true,
            BlockKey::Micro { func_pc, gen, .. } => m.mcache.resident_gen(*func_pc) == Some(*gen),
        });
        self.stats.invalidations += (before - self.cache.len()) as u64;
        self.synced_epoch = epoch;
    }
}

impl ExecBackend for SuperblockBackend {
    fn dispatch(&mut self, m: &mut Machine<'_>) -> Result<bool, SimError> {
        // Single-step whenever block execution could observably diverge.
        if m.tracer.is_some() {
            self.stats.fallback_tracer += 1;
            return checked_step(m);
        }
        if m.config.interrupt_every > 0 || !m.config.interrupt_at.is_empty() {
            self.stats.fallback_interrupts += 1;
            return checked_step(m);
        }
        // Chain blocks: a lowered branch terminator keeps control inside
        // the backend (the common case for hot loops), so one dispatch can
        // replay an entire loop nest. Nothing inside the chain can flip the
        // guards above or activate the translator (both need a call, which
        // exits through the interpreter), and the mcache epoch check at the
        // top of each iteration is a cheap integer compare.
        loop {
            if m.translator.is_active() {
                self.stats.fallback_translator += 1;
                return checked_step(m);
            }
            self.sync_invalidations(m);

            let (code, meta, start, in_micro, key) = match m.stream {
                Stream::Prog { pc } => (
                    &m.prog.code[..],
                    &m.prog_meta[..],
                    pc,
                    false,
                    BlockKey::Prog { pc },
                ),
                Stream::Micro { idx, pos, .. } => (
                    m.mcache.code(idx),
                    m.mcache.meta(idx),
                    pos,
                    true,
                    BlockKey::Micro {
                        func_pc: m.mcache.func_pc(idx),
                        gen: m.mcache.gen(idx),
                        pos,
                    },
                ),
            };
            // Calls, returns, halt, and running off the end of the code are
            // always the interpreter's job. Direct branches are not: a block
            // starting on one lowers to an empty body plus a branch
            // terminator.
            match code.get(start as usize) {
                Some(inst) if !needs_interp(inst) => {}
                _ => {
                    self.stats.fallback_control += 1;
                    return checked_step(m);
                }
            }
            let block = match self.cache.entry(key) {
                Entry::Occupied(e) => {
                    self.stats.hits += 1;
                    Rc::clone(e.get())
                }
                Entry::Vacant(v) => {
                    self.stats.misses += 1;
                    let b = Rc::new(discover(
                        code,
                        meta,
                        start,
                        in_micro,
                        m.prog,
                        m.config.lanes,
                    ));
                    self.stats.lowered += 1;
                    self.stats.lowered_instrs += b.insts.len() as u64;
                    Rc::clone(v.insert(b))
                }
            };
            let jumped = exec_block(m, &block)?;
            self.stats.block_instrs += block.insts.len() as u64;
            if !jumped {
                // Interpreter terminator: calls, returns, halt, translation
                // begins, and microcode entry/exit all happen here.
                m.advance(block.end());
                return checked_step(m);
            }
        }
    }

    fn block_stats(&self) -> BlockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackendKind, MachineConfig};
    use liquid_simd_isa::asm;

    const SUM_LOOP: &str = r"
.data
.i32 A: 1, 2, 3, 4, 5, 6, 7, 8

.text
main:
    mov r1, #0
    mov r0, #0
top:
    ldw r2, [A + r0]
    add r1, r1, r2
    add r0, r0, #1
    cmp r0, #8
    blt top
    halt
";

    fn run_both(src: &str, config: &MachineConfig) {
        let p = asm::assemble(src).expect("assembles");
        let config = config.clone().with_ledger(true);
        let mut mi = Machine::new(&p, config.clone().with_backend(BackendKind::Interp));
        let ri = mi.run().expect("interp runs");
        let mut ms = Machine::new(&p, config.clone().with_backend(BackendKind::Superblock));
        let rs = ms.run().expect("superblock runs");
        // The ledger invariant, both halves: bucket sums equal the phase
        // totals bit-exactly, and the two backends attribute every cycle to
        // the same (region, pc, category) bucket.
        let li = ri.ledger.as_ref().expect("ledger recorded");
        assert_eq!(li.total_cycles(), ri.phases.total());
        assert_eq!(ri.ledger, rs.ledger);
        assert_eq!(ri.cycles, rs.cycles);
        assert_eq!(ri.retired, rs.retired);
        assert_eq!(ri.scalar_retired, rs.scalar_retired);
        assert_eq!(ri.vector_retired, rs.vector_retired);
        assert_eq!(ri.lane_ops, rs.lane_ops);
        assert_eq!(ri.icache, rs.icache);
        assert_eq!(ri.dcache, rs.dcache);
        assert_eq!(ri.phases, rs.phases);
        assert_eq!(mi.regs().r, ms.regs().r);
        assert_eq!(mi.regs().f, ms.regs().f);
        assert_eq!(mi.regs().v, ms.regs().v);
        assert_eq!(
            mi.memory().slice(0x1000, 16).ok(),
            ms.memory().slice(0x1000, 16).ok()
        );
        assert_eq!(ri.backend, BackendKind::Interp);
        assert_eq!(rs.backend, BackendKind::Superblock);
        assert_eq!(ri.blocks, crate::report::BlockStats::default());
        assert!(rs.blocks.lowered > 0);
        assert!(rs.blocks.hits > 0); // the loop body re-dispatches
    }

    #[test]
    fn superblock_matches_interpreter_on_scalar_loop() {
        run_both(SUM_LOOP, &MachineConfig::scalar_only());
    }

    #[test]
    fn superblock_matches_interpreter_with_translation() {
        run_both(SUM_LOOP, &MachineConfig::liquid(8));
    }

    #[test]
    fn cycle_limit_faults_identically() {
        let p = asm::assemble(
            r"
.text
main:
    mov r0, #0
top:
    add r0, r0, #1
    b top
",
        )
        .unwrap();
        let mut cfg = MachineConfig::scalar_only();
        cfg.max_cycles = 10_000;
        let ei = Machine::new(&p, cfg.clone()).run().unwrap_err();
        let es = Machine::new(&p, cfg.with_backend(BackendKind::Superblock))
            .run()
            .unwrap_err();
        assert_eq!(ei, es);
    }

    /// Emits a random-but-legal scalar loop: load, a random ALU mix with
    /// optional forward branches (several superblocks per iteration),
    /// store, and a counted backedge. Deterministic in `rand`.
    fn random_program(rand: &mut impl FnMut() -> u64, case: usize) -> String {
        let n = 8 + (case % 4) * 8;
        let vals: Vec<String> = (0..n)
            .map(|_| ((rand() % 2000) as i64 - 1000).to_string())
            .collect();
        let zeros: Vec<String> = (0..n).map(|_| "0".to_string()).collect();
        let mut body = String::new();
        let ops = ["add", "sub", "mul", "and", "orr", "eor"];
        let mut skips = 0usize;
        for _ in 0..(2 + rand() % 7) {
            let op = ops[(rand() % ops.len() as u64) as usize];
            let rd = 2 + rand() % 5;
            let rn = 1 + rand() % 6;
            if rand().is_multiple_of(2) {
                body.push_str(&format!("    {op} r{rd}, r{rn}, #{}\n", rand() % 64));
            } else {
                body.push_str(&format!("    {op} r{rd}, r{rn}, r{}\n", 1 + rand() % 6));
            }
            if rand().is_multiple_of(4) {
                // A data-dependent forward skip: splits the iteration into
                // several blocks whose chaining both backends must agree on.
                let cond = if rand().is_multiple_of(2) {
                    "beq"
                } else {
                    "bgt"
                };
                body.push_str(&format!(
                    "    cmp r{}, #{}\n    {cond} skip{skips}\n    add r{rd}, r{rd}, #1\nskip{skips}:\n",
                    2 + rand() % 5,
                    rand() % 500,
                ));
                skips += 1;
            }
        }
        format!(
            ".data\n.i32 A: {}\n.i32 B: {}\n\n.text\nmain:\n    mov r0, #0\n    mov r1, #0\n\
             top:\n    ldw r2, [A + r0]\n{body}    stw [B + r0], r2\n    add r0, r0, #1\n\
             \x20   cmp r0, #{n}\n    blt top\n    halt\n",
            vals.join(", "),
            zeros.join(", "),
        )
    }

    /// The lowering property: on a random legal program, every dispatch
    /// boundary of the superblock backend must land exactly where the
    /// interpreter sat after the same number of retired instructions —
    /// the identical `(pc, cycle)` sequence, observed at block
    /// granularity, with identical final state.
    #[test]
    fn random_programs_retire_identical_pc_cycle_sequences() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..24 {
            let src = random_program(&mut rand, case);
            let p = asm::assemble(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));

            // Full per-retire interpreter trace: retired count -> (pc, cycle).
            let mut mi = Machine::new(&p, MachineConfig::scalar_only());
            let mut trace = std::collections::HashMap::new();
            trace.insert(mi.report.retired, (mi.current_pc(), mi.cycle));
            while !mi.step().expect("interp step") {
                trace.insert(mi.report.retired, (mi.current_pc(), mi.cycle));
            }

            let mut ms = Machine::new(
                &p,
                MachineConfig::scalar_only().with_backend(BackendKind::Superblock),
            );
            let mut backend = SuperblockBackend::new();
            loop {
                let at = (ms.current_pc(), ms.cycle);
                assert_eq!(
                    trace.get(&ms.report.retired),
                    Some(&at),
                    "case {case}: superblock checkpoint at retire {} diverged",
                    ms.report.retired
                );
                if backend.dispatch(&mut ms).expect("superblock dispatch") {
                    break;
                }
            }
            assert_eq!(mi.report.retired, ms.report.retired, "case {case}");
            assert_eq!(mi.cycle, ms.cycle, "case {case}");
            assert_eq!(mi.regs().r, ms.regs().r, "case {case}");
            let base = mi.memory().base();
            let len = mi.memory().size();
            assert_eq!(
                mi.memory().slice(base, len).ok(),
                ms.memory().slice(base, len).ok(),
                "case {case}"
            );
        }
    }

    #[test]
    fn fallback_reasons_are_counted() {
        let p = asm::assemble(SUM_LOOP).unwrap();
        let mut cfg = MachineConfig::scalar_only().with_backend(BackendKind::Superblock);
        cfg.interrupt_every = 3;
        let mut m = Machine::new(&p, cfg);
        let r = m.run().unwrap();
        // Interrupt injection forces permanent single-stepping.
        assert_eq!(r.blocks.lowered, 0);
        assert_eq!(r.blocks.fallback_interrupts, r.retired);
    }
}
