//! Architectural register state.

use liquid_simd_isa::Flags;

/// The machine's register files: 16 integer, 16 fp (raw `f32` bits), 16
/// vector registers of `lanes` 32-bit lanes each, plus the condition flags.
#[derive(Clone, Debug)]
pub struct RegFile {
    /// Integer registers (`r14` is the link register).
    pub r: [u32; 16],
    /// Floating-point registers, stored as IEEE-754 bits.
    pub f: [u32; 16],
    /// Vector registers: `lanes` raw 32-bit lanes each.
    pub v: Vec<Vec<u32>>,
    /// Condition flags.
    pub flags: Flags,
    /// Scratch lane buffer for in-place permutations — avoids a heap
    /// allocation per executed `vperm` (simulator-internal, not
    /// architectural state).
    pub(crate) scratch: Vec<u32>,
}

impl RegFile {
    /// Creates a zeroed register file for a `lanes`-wide accelerator.
    #[must_use]
    pub fn new(lanes: usize) -> RegFile {
        RegFile {
            r: [0; 16],
            f: [0; 16],
            v: vec![vec![0; lanes]; 16],
            flags: Flags::default(),
            scratch: vec![0; lanes],
        }
    }

    /// Reads an fp register as `f32`.
    #[must_use]
    pub fn f32(&self, idx: u8) -> f32 {
        f32::from_bits(self.f[idx as usize])
    }

    /// Writes an fp register from `f32`.
    pub fn set_f32(&mut self, idx: u8, value: f32) {
        self.f[idx as usize] = value.to_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_bits_roundtrip() {
        let mut rf = RegFile::new(4);
        rf.set_f32(3, -1.25);
        assert_eq!(rf.f32(3), -1.25);
        assert_eq!(rf.v.len(), 16);
        assert_eq!(rf.v[0].len(), 4);
    }
}
