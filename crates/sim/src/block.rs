//! Superblock lowering: straight-line instruction runs pre-lowered into a
//! flat threaded-code form and replayed without per-step dispatch.
//!
//! The interpreter ([`crate::machine::Machine::step`]) pays a fixed toll on
//! every retire: stream match, bounds-checked fetch, a 56-byte `InstMeta`
//! copy, the two-level `Inst` enum dispatch, per-lane `Vec` double
//! indexing, and the tracer/interrupt/translator checks. None of that work
//! changes between executions of the same straight-line run, so the
//! superblock backend performs it once per *block*: [`discover`] scans from
//! a start PC to the next control-flow instruction, resolves symbols,
//! flattens each instruction into a [`Lowered`] op, and pre-computes which
//! operand-readiness checks are statically satisfiable inside the block.
//! [`exec_block`] then replays the lowered run with scoreboard timing that
//! is bit-exact with the interpreter — the conformance oracle and the perf
//! sentinel's cross-backend gate both enforce that equivalence.
//!
//! # Cycle-accounting equivalence
//!
//! For every instruction the executor reproduces the interpreter's exact
//! sequence: `issue = max(cycle+1, ready[srcs])`, the I-cache probe (program
//! stream only), functional execution, the D-cache range access,
//! `done = issue + latency + mem_extra`, writeback, and
//! `cycle = issue (+ mem_extra for stores)`. A direct branch ending the
//! run is lowered as the block's [`Terminator`] and replayed with the same
//! sequence (flags-readiness stall, I-cache probe, taken-branch refill
//! `lat.branch_taken`, retire), so hot loop backedges never leave the
//! backend; calls, returns, and halt always do. The only elisions are
//! *proven no-ops*:
//!
//! - **Hoisted readiness checks.** `cycle` advances by at least one per
//!   retire, so `issue_j >= issue_i + (j - i)` for in-block indices
//!   `i < j`. If index `i` defines register `d` unconditionally with no
//!   memory participation, its writeback sets `ready[d] = issue_i + lat`;
//!   a consumer at `j` with `lat <= j - i` therefore never stalls on it and
//!   the check is dropped at lowering time. Conditional or memory-feeding
//!   defs keep their consumers' checks (their `done` is dynamic). Flags
//!   after any in-block `cmp` are always ready (`issue_i + 1 <= issue_j`).
//! - **Batched counters.** Retire counters and phase cycles accumulate in
//!   locals and flush once per block (also on the error path), producing
//!   identical `RunReport` totals.

use liquid_simd_isa::{
    AluOp, Base, Cond, ElemType, Flags, FpOp, Inst, Operand2, Program, RedOp, ScalarInst,
    ScalarSrc, VAluOp, VectorInst,
};
use liquid_simd_mem::Memory;

use crate::exec::{exec, load_extend, SimError};
use crate::machine::Machine;
use crate::meta::{InstMeta, RegRef};
use crate::regfile::RegFile;

/// A resolved memory-base operand: register or absolute (symbol) address.
#[derive(Clone, Copy, Debug)]
pub(crate) enum LBase {
    /// Base register index.
    Reg(u8),
    /// Symbol resolved at lowering time (the symbol table is immutable).
    Abs(u32),
}

impl LBase {
    #[inline(always)]
    fn value(self, regs: &RegFile) -> u32 {
        match self {
            LBase::Reg(r) => regs.r[r as usize],
            LBase::Abs(a) => a,
        }
    }
}

/// One pre-lowered instruction: operands decoded, symbols resolved,
/// predicates split into dedicated conditional variants so the common
/// unconditional forms carry no predicate test at all.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Lowered {
    Nop,
    MovImm {
        rd: u8,
        imm: u32,
    },
    CondMovImm {
        cond: Cond,
        rd: u8,
        imm: u32,
    },
    Mov {
        rd: u8,
        rm: u8,
    },
    CondMov {
        cond: Cond,
        rd: u8,
        rm: u8,
    },
    AluRR {
        op: AluOp,
        rd: u8,
        rn: u8,
        rm: u8,
    },
    AluRI {
        op: AluOp,
        rd: u8,
        rn: u8,
        imm: i32,
    },
    CondAluRR {
        cond: Cond,
        op: AluOp,
        rd: u8,
        rn: u8,
        rm: u8,
    },
    CondAluRI {
        cond: Cond,
        op: AluOp,
        rd: u8,
        rn: u8,
        imm: i32,
    },
    CmpRR {
        rn: u8,
        rm: u8,
    },
    CmpRI {
        rn: u8,
        imm: i32,
    },
    FAlu {
        op: FpOp,
        fd: u8,
        fn_: u8,
        fm: u8,
    },
    FMov {
        fd: u8,
        fm: u8,
    },
    CondFMov {
        cond: Cond,
        fd: u8,
        fm: u8,
    },
    Ld {
        width: u32,
        signed: bool,
        rd: u8,
        base: LBase,
        index: u8,
    },
    St {
        width: u32,
        rs: u8,
        base: LBase,
        index: u8,
    },
    LdF {
        fd: u8,
        base: LBase,
        index: u8,
    },
    StF {
        fs: u8,
        base: LBase,
        index: u8,
    },
    VLd {
        esz: u32,
        signed: bool,
        vd: u8,
        base: LBase,
        index: u8,
    },
    VSt {
        esz: u32,
        vs: u8,
        base: LBase,
        index: u8,
    },
    VAlu {
        op: VAluOp,
        elem: ElemType,
        vd: u8,
        vn: u8,
        vm: u8,
    },
    VAluImm {
        op: VAluOp,
        elem: ElemType,
        vd: u8,
        vn: u8,
        imm: u32,
    },
    VAluScalar {
        op: VAluOp,
        elem: ElemType,
        vd: u8,
        vn: u8,
        src: ScalarSrc,
    },
    VRedI {
        op: RedOp,
        rd: u8,
        vn: u8,
    },
    VRedF {
        op: RedOp,
        fd: u8,
        vn: u8,
    },
    VPerm {
        vd: u8,
        vn: u8,
        map: [u8; 16],
    },
    VSplat {
        vd: u8,
        imm: u32,
    },
    /// Anything rare or stateful (constant-vector ops re-read memory,
    /// unresolvable symbols and invalid permutes must fault exactly,
    /// vector ops without an accelerator must fault exactly): execute
    /// through the interpreter's `exec`.
    Generic(Inst),
}

/// One instruction inside a lowered block, with the static scoreboard facts
/// it retires under. `srcs` holds only the readiness checks that could not
/// be hoisted (see the module docs), packed front-to-back.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LoweredInst {
    pub kind: Lowered,
    pub pc: u32,
    pub srcs: [Option<RegRef>; 6],
    pub def: Option<RegRef>,
    pub writes_flags: bool,
    pub latency: u32,
    pub vector: bool,
    pub active_lanes: u16,
}

/// How a lowered block hands off control when its straight-line body ends.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Terminator {
    /// Calls, returns, halt, end-of-code: one interpreter step (this is
    /// where translation begins and microcode entry/exit happen).
    Interp,
    /// A direct branch, executed in-block with the interpreter's exact
    /// timing. `check_flags` keeps the flags-readiness stall when no
    /// in-block flag write makes it statically satisfied (same hoisting
    /// proof as body sources).
    Branch {
        pc: u32,
        target: u32,
        cond: Cond,
        check_flags: bool,
    },
}

/// A lowered straight-line run: `insts.len()` instructions starting at
/// `start`, ending in `term` — a lowered direct branch, or a hand-off to
/// the interpreter. Immutable once built; cached by the superblock backend.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    pub start: u32,
    pub in_micro: bool,
    pub insts: Vec<LoweredInst>,
    pub term: Terminator,
}

impl Block {
    /// First PC *not* covered by the block's body (the terminator).
    pub fn end(&self) -> u32 {
        self.start + self.insts.len() as u32
    }
}

/// Whether an instruction ends a straight-line run (any control flow).
pub(crate) fn is_terminator(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::S(ScalarInst::B { .. } | ScalarInst::Bl { .. } | ScalarInst::Ret | ScalarInst::Halt)
    )
}

/// Control flow the backend cannot lower and must hand to the interpreter:
/// calls (translation begins, microcode entry), returns (stream switches),
/// and halt. Direct branches are lowered as block terminators instead.
pub(crate) fn needs_interp(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::S(ScalarInst::Bl { .. } | ScalarInst::Ret | ScalarInst::Halt)
    )
}

fn cond_of(inst: &Inst) -> Cond {
    match inst {
        Inst::S(
            ScalarInst::MovImm { cond, .. }
            | ScalarInst::Mov { cond, .. }
            | ScalarInst::Alu { cond, .. }
            | ScalarInst::FMov { cond, .. }
            | ScalarInst::B { cond, .. },
        ) => *cond,
        _ => Cond::Al,
    }
}

fn has_mem(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::S(
            ScalarInst::LdInt { .. }
                | ScalarInst::StInt { .. }
                | ScalarInst::LdF { .. }
                | ScalarInst::StF { .. }
        ) | Inst::V(VectorInst::VLd { .. } | VectorInst::VSt { .. } | VectorInst::VAluConst { .. })
    )
}

/// Per-register knowledge while scanning a block, for readiness hoisting.
#[derive(Clone, Copy)]
enum DefState {
    /// Defined before the block: readiness unknown, keep the check.
    Unknown,
    /// Redefined in-block by a conditional or memory-feeding instruction:
    /// its `done` cycle is dynamic, keep the check.
    Dynamic,
    /// Redefined at block index `idx` by an unconditional, non-memory
    /// instruction with result latency `lat`: ready at `issue_idx + lat`.
    Exact { idx: u32, lat: u32 },
}

struct Hoist {
    r: [DefState; 16],
    f: [DefState; 16],
    v: [DefState; 16],
    flags_set: bool,
}

impl Hoist {
    fn new() -> Hoist {
        Hoist {
            r: [DefState::Unknown; 16],
            f: [DefState::Unknown; 16],
            v: [DefState::Unknown; 16],
            flags_set: false,
        }
    }

    /// Whether a readiness check for `src` at block index `j` is statically
    /// satisfied (see the module docs for the proof).
    fn satisfied(&self, src: RegRef, j: u32) -> bool {
        let state = match src {
            RegRef::Flags => return self.flags_set,
            RegRef::Int(i) => self.r[i as usize],
            RegRef::Fp(i) => self.f[i as usize],
            RegRef::Vec(i) => self.v[i as usize],
        };
        matches!(state, DefState::Exact { idx, lat } if lat <= j - idx)
    }

    fn record(&mut self, meta: &InstMeta, dynamic_done: bool, j: u32) {
        if meta.writes_flags {
            self.flags_set = true;
        }
        if let Some(d) = meta.def {
            let state = if dynamic_done {
                DefState::Dynamic
            } else {
                DefState::Exact {
                    idx: j,
                    lat: meta.latency,
                }
            };
            match d {
                RegRef::Int(i) => self.r[i as usize] = state,
                RegRef::Fp(i) => self.f[i as usize] = state,
                RegRef::Vec(i) => self.v[i as usize] = state,
                RegRef::Flags => {}
            }
        }
    }
}

fn lbase(base: Base, prog: &Program) -> Option<LBase> {
    match base {
        Base::Reg(r) => Some(LBase::Reg(r.index())),
        Base::Sym(s) => prog.symbol(s).ok().map(|sym| LBase::Abs(sym.addr)),
    }
}

/// Lowers one (non-terminator) instruction. Anything that cannot be proven
/// equivalent in flattened form falls back to [`Lowered::Generic`].
#[allow(clippy::too_many_lines)]
fn lower_inst(inst: &Inst, prog: &Program, lanes: usize) -> Lowered {
    match *inst {
        Inst::S(s) => match s {
            ScalarInst::Nop => Lowered::Nop,
            ScalarInst::MovImm { cond, rd, imm } => {
                if cond == Cond::Al {
                    Lowered::MovImm {
                        rd: rd.index(),
                        imm: imm as u32,
                    }
                } else {
                    Lowered::CondMovImm {
                        cond,
                        rd: rd.index(),
                        imm: imm as u32,
                    }
                }
            }
            ScalarInst::Mov { cond, rd, rm } => {
                if cond == Cond::Al {
                    Lowered::Mov {
                        rd: rd.index(),
                        rm: rm.index(),
                    }
                } else {
                    Lowered::CondMov {
                        cond,
                        rd: rd.index(),
                        rm: rm.index(),
                    }
                }
            }
            ScalarInst::Alu {
                cond,
                op,
                rd,
                rn,
                op2,
            } => match (cond == Cond::Al, op2) {
                (true, Operand2::Reg(rm)) => Lowered::AluRR {
                    op,
                    rd: rd.index(),
                    rn: rn.index(),
                    rm: rm.index(),
                },
                (true, Operand2::Imm(imm)) => Lowered::AluRI {
                    op,
                    rd: rd.index(),
                    rn: rn.index(),
                    imm,
                },
                (false, Operand2::Reg(rm)) => Lowered::CondAluRR {
                    cond,
                    op,
                    rd: rd.index(),
                    rn: rn.index(),
                    rm: rm.index(),
                },
                (false, Operand2::Imm(imm)) => Lowered::CondAluRI {
                    cond,
                    op,
                    rd: rd.index(),
                    rn: rn.index(),
                    imm,
                },
            },
            ScalarInst::Cmp { rn, op2 } => match op2 {
                Operand2::Reg(rm) => Lowered::CmpRR {
                    rn: rn.index(),
                    rm: rm.index(),
                },
                Operand2::Imm(imm) => Lowered::CmpRI {
                    rn: rn.index(),
                    imm,
                },
            },
            ScalarInst::FAlu { op, fd, fn_, fm } => Lowered::FAlu {
                op,
                fd: fd.index(),
                fn_: fn_.index(),
                fm: fm.index(),
            },
            ScalarInst::FMov { cond, fd, fm } => {
                if cond == Cond::Al {
                    Lowered::FMov {
                        fd: fd.index(),
                        fm: fm.index(),
                    }
                } else {
                    Lowered::CondFMov {
                        cond,
                        fd: fd.index(),
                        fm: fm.index(),
                    }
                }
            }
            ScalarInst::LdInt {
                width,
                signed,
                rd,
                base,
                index,
            } => match lbase(base, prog) {
                Some(base) => Lowered::Ld {
                    width: width.bytes(),
                    signed,
                    rd: rd.index(),
                    base,
                    index: index.index(),
                },
                None => Lowered::Generic(*inst),
            },
            ScalarInst::StInt {
                width,
                rs,
                base,
                index,
            } => match lbase(base, prog) {
                Some(base) => Lowered::St {
                    width: width.bytes(),
                    rs: rs.index(),
                    base,
                    index: index.index(),
                },
                None => Lowered::Generic(*inst),
            },
            ScalarInst::LdF { fd, base, index } => match lbase(base, prog) {
                Some(base) => Lowered::LdF {
                    fd: fd.index(),
                    base,
                    index: index.index(),
                },
                None => Lowered::Generic(*inst),
            },
            ScalarInst::StF { fs, base, index } => match lbase(base, prog) {
                Some(base) => Lowered::StF {
                    fs: fs.index(),
                    base,
                    index: index.index(),
                },
                None => Lowered::Generic(*inst),
            },
            // Terminators never reach lowering (discover stops first); be
            // safe rather than unreachable.
            ScalarInst::B { .. } | ScalarInst::Bl { .. } | ScalarInst::Ret | ScalarInst::Halt => {
                Lowered::Generic(*inst)
            }
        },
        Inst::V(v) => {
            if lanes < 2 {
                // Must fault exactly like the interpreter.
                return Lowered::Generic(*inst);
            }
            match v {
                VectorInst::VLd {
                    elem,
                    signed,
                    vd,
                    base,
                    index,
                } => match lbase(base, prog) {
                    Some(base) => Lowered::VLd {
                        esz: elem.bytes(),
                        signed,
                        vd: vd.index(),
                        base,
                        index: index.index(),
                    },
                    None => Lowered::Generic(*inst),
                },
                VectorInst::VSt {
                    elem,
                    vs,
                    base,
                    index,
                } => match lbase(base, prog) {
                    Some(base) => Lowered::VSt {
                        esz: elem.bytes(),
                        vs: vs.index(),
                        base,
                        index: index.index(),
                    },
                    None => Lowered::Generic(*inst),
                },
                VectorInst::VAlu {
                    op,
                    elem,
                    vd,
                    vn,
                    vm,
                } => Lowered::VAlu {
                    op,
                    elem,
                    vd: vd.index(),
                    vn: vn.index(),
                    vm: vm.index(),
                },
                VectorInst::VAluImm {
                    op,
                    elem,
                    vd,
                    vn,
                    imm,
                } => Lowered::VAluImm {
                    op,
                    elem,
                    vd: vd.index(),
                    vn: vn.index(),
                    imm: imm as u32,
                },
                // Re-reads the constant region from memory every execution;
                // keep the interpreter's code path.
                VectorInst::VAluConst { .. } => Lowered::Generic(*inst),
                VectorInst::VAluScalar {
                    op,
                    elem,
                    vd,
                    vn,
                    src,
                } => Lowered::VAluScalar {
                    op,
                    elem,
                    vd: vd.index(),
                    vn: vn.index(),
                    src,
                },
                VectorInst::VRedI { op, rd, vn, .. } => Lowered::VRedI {
                    op,
                    rd: rd.index(),
                    vn: vn.index(),
                },
                VectorInst::VRedF { op, fd, vn } => Lowered::VRedF {
                    op,
                    fd: fd.index(),
                    vn: vn.index(),
                },
                VectorInst::VPerm { kind, vd, vn, .. } => {
                    let block = usize::from(kind.block());
                    if block > lanes || !lanes.is_multiple_of(block) || lanes > 16 {
                        // Invalid combinations fault through the interpreter.
                        Lowered::Generic(*inst)
                    } else {
                        let mut map = [0u8; 16];
                        for (i, m) in map.iter_mut().enumerate().take(lanes) {
                            *m = ((i - (i % block)) + kind.source_index(i)) as u8;
                        }
                        Lowered::VPerm {
                            vd: vd.index(),
                            vn: vn.index(),
                            map,
                        }
                    }
                }
                VectorInst::VSplat { vd, imm, .. } => Lowered::VSplat {
                    vd: vd.index(),
                    imm: imm as u32,
                },
            }
        }
    }
}

/// Scans a straight-line run starting at `start` and lowers it into a
/// [`Block`]. Stops at the first control-flow instruction or the end of the
/// code (both are handled by the interpreter afterwards).
pub(crate) fn discover(
    code: &[Inst],
    meta: &[InstMeta],
    start: u32,
    in_micro: bool,
    prog: &Program,
    lanes: usize,
) -> Block {
    let mut insts = Vec::new();
    let mut hoist = Hoist::new();
    let mut pc = start;
    let mut j = 0u32;
    while let Some(inst) = code.get(pc as usize) {
        if is_terminator(inst) {
            break;
        }
        let m = &meta[pc as usize];
        let mut srcs = [None; 6];
        let mut n = 0;
        for src in m.srcs.iter().take_while(|s| s.is_some()).flatten() {
            if !hoist.satisfied(*src, j) {
                srcs[n] = Some(*src);
                n += 1;
            }
        }
        let kind = lower_inst(inst, prog, lanes);
        let dynamic_done =
            matches!(kind, Lowered::Generic(_)) || cond_of(inst) != Cond::Al || has_mem(inst);
        hoist.record(m, dynamic_done, j);
        insts.push(LoweredInst {
            kind,
            pc,
            srcs,
            def: m.def,
            writes_flags: m.writes_flags,
            latency: m.latency,
            vector: m.vector,
            active_lanes: m.active_lanes,
        });
        pc += 1;
        j += 1;
    }
    let term = match code.get(pc as usize) {
        Some(&Inst::S(ScalarInst::B { cond, target })) => Terminator::Branch {
            pc,
            target,
            cond,
            check_flags: cond != Cond::Al && !hoist.satisfied(RegRef::Flags, j),
        },
        _ => Terminator::Interp,
    };
    Block {
        start,
        in_micro,
        insts,
        term,
    }
}

/// Functional result of a lowered instruction — the subset of
/// [`crate::exec::Outcome`] that straight-line code can produce (no control
/// disposition, no taken branches, no translator value).
struct Fx {
    executed: bool,
    mem: Option<(u32, u32, bool)>,
}

/// Element-wise loop over two vector sources into `vd`, handling every
/// aliasing pattern with bounds-check-free zips. Lane `i` reads only lane
/// `i` of each source, so in-place update is safe.
#[inline(always)]
fn vloop2(regs: &mut RegFile, vd: usize, vn: usize, vm: usize, f: impl Fn(u32, u32) -> u32) {
    let mut d = std::mem::take(&mut regs.v[vd]);
    if vn == vd && vm == vd {
        for x in &mut d {
            *x = f(*x, *x);
        }
    } else if vn == vd {
        for (x, &b) in d.iter_mut().zip(&regs.v[vm]) {
            *x = f(*x, b);
        }
    } else if vm == vd {
        for (x, &a) in d.iter_mut().zip(&regs.v[vn]) {
            *x = f(a, *x);
        }
    } else if vn == vm {
        for (x, &a) in d.iter_mut().zip(&regs.v[vn]) {
            *x = f(a, a);
        }
    } else {
        for ((x, &a), &b) in d.iter_mut().zip(&regs.v[vn]).zip(&regs.v[vm]) {
            *x = f(a, b);
        }
    }
    regs.v[vd] = d;
}

/// Element-wise loop against a broadcast second operand.
#[inline(always)]
fn vloop_b(regs: &mut RegFile, vd: usize, vn: usize, b: u32, f: impl Fn(u32, u32) -> u32) {
    let mut d = std::mem::take(&mut regs.v[vd]);
    if vn == vd {
        for x in &mut d {
            *x = f(*x, b);
        }
    } else {
        for (x, &a) in d.iter_mut().zip(&regs.v[vn]) {
            *x = f(a, b);
        }
    }
    regs.v[vd] = d;
}

/// Executes one lowered instruction functionally. Mirrors
/// [`crate::exec::exec`] exactly for the specialized forms and delegates to
/// it for [`Lowered::Generic`].
#[allow(clippy::too_many_lines)]
fn exec_lowered(
    kind: &Lowered,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut Memory,
    prog: &Program,
    lanes: usize,
) -> Result<Fx, SimError> {
    let mut fx = Fx {
        executed: true,
        mem: None,
    };
    match *kind {
        Lowered::Nop => {}
        Lowered::MovImm { rd, imm } => {
            regs.r[rd as usize] = imm;
        }
        Lowered::CondMovImm { cond, rd, imm } => {
            fx.executed = cond.eval(regs.flags);
            if fx.executed {
                regs.r[rd as usize] = imm;
            }
        }
        Lowered::Mov { rd, rm } => {
            regs.r[rd as usize] = regs.r[rm as usize];
        }
        Lowered::CondMov { cond, rd, rm } => {
            fx.executed = cond.eval(regs.flags);
            if fx.executed {
                regs.r[rd as usize] = regs.r[rm as usize];
            }
        }
        Lowered::AluRR { op, rd, rn, rm } => {
            let v = op.eval(regs.r[rn as usize] as i32, regs.r[rm as usize] as i32);
            regs.r[rd as usize] = v as u32;
        }
        Lowered::AluRI { op, rd, rn, imm } => {
            let v = op.eval(regs.r[rn as usize] as i32, imm);
            regs.r[rd as usize] = v as u32;
        }
        Lowered::CondAluRR {
            cond,
            op,
            rd,
            rn,
            rm,
        } => {
            fx.executed = cond.eval(regs.flags);
            if fx.executed {
                let v = op.eval(regs.r[rn as usize] as i32, regs.r[rm as usize] as i32);
                regs.r[rd as usize] = v as u32;
            }
        }
        Lowered::CondAluRI {
            cond,
            op,
            rd,
            rn,
            imm,
        } => {
            fx.executed = cond.eval(regs.flags);
            if fx.executed {
                let v = op.eval(regs.r[rn as usize] as i32, imm);
                regs.r[rd as usize] = v as u32;
            }
        }
        Lowered::CmpRR { rn, rm } => {
            regs.flags = Flags::from_cmp(regs.r[rn as usize] as i32, regs.r[rm as usize] as i32);
        }
        Lowered::CmpRI { rn, imm } => {
            regs.flags = Flags::from_cmp(regs.r[rn as usize] as i32, imm);
        }
        Lowered::FAlu { op, fd, fn_, fm } => {
            let v = op.eval(regs.f32(fn_), regs.f32(fm));
            regs.set_f32(fd, v);
        }
        Lowered::FMov { fd, fm } => {
            regs.f[fd as usize] = regs.f[fm as usize];
        }
        Lowered::CondFMov { cond, fd, fm } => {
            fx.executed = cond.eval(regs.flags);
            if fx.executed {
                regs.f[fd as usize] = regs.f[fm as usize];
            }
        }
        Lowered::Ld {
            width,
            signed,
            rd,
            base,
            index,
        } => {
            let b = base.value(regs);
            let addr = b.wrapping_add(regs.r[index as usize].wrapping_mul(width));
            let (raw, _) = load_extend(mem, addr, width, signed)?;
            regs.r[rd as usize] = raw;
            fx.mem = Some((addr, width, false));
        }
        Lowered::St {
            width,
            rs,
            base,
            index,
        } => {
            let b = base.value(regs);
            let addr = b.wrapping_add(regs.r[index as usize].wrapping_mul(width));
            mem.write(addr, width, regs.r[rs as usize])?;
            fx.mem = Some((addr, width, true));
        }
        Lowered::LdF { fd, base, index } => {
            let b = base.value(regs);
            let addr = b.wrapping_add(regs.r[index as usize].wrapping_mul(4));
            regs.f[fd as usize] = mem.read(addr, 4)?;
            fx.mem = Some((addr, 4, false));
        }
        Lowered::StF { fs, base, index } => {
            let b = base.value(regs);
            let addr = b.wrapping_add(regs.r[index as usize].wrapping_mul(4));
            mem.write(addr, 4, regs.f[fs as usize])?;
            fx.mem = Some((addr, 4, true));
        }
        Lowered::VLd {
            esz,
            signed,
            vd,
            base,
            index,
        } => {
            let b = base.value(regs);
            let start = b.wrapping_add(regs.r[index as usize].wrapping_mul(esz));
            let total = esz * lanes as u32;
            let vd = vd as usize;
            let mut bulk = false;
            if start.checked_add(total).is_some() {
                if let Ok(bytes) = mem.slice(start, total as usize) {
                    match esz {
                        1 => {
                            for (d, &raw) in regs.v[vd].iter_mut().zip(bytes) {
                                *d = if signed {
                                    i32::from(raw as i8) as u32
                                } else {
                                    u32::from(raw)
                                };
                            }
                        }
                        2 => {
                            for (i, d) in regs.v[vd].iter_mut().enumerate() {
                                let w = u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]);
                                *d = if signed {
                                    i32::from(w as i16) as u32
                                } else {
                                    u32::from(w)
                                };
                            }
                        }
                        _ => {
                            for (i, d) in regs.v[vd].iter_mut().enumerate() {
                                *d = u32::from_le_bytes([
                                    bytes[4 * i],
                                    bytes[4 * i + 1],
                                    bytes[4 * i + 2],
                                    bytes[4 * i + 3],
                                ]);
                            }
                        }
                    }
                    bulk = true;
                }
            }
            if !bulk {
                // Byte-exact fallback: per-lane accesses with the
                // interpreter's exact address expression, fault, and
                // partial-write behaviour.
                for i in 0..lanes {
                    let addr = start + i as u32 * esz;
                    let (raw, _) = load_extend(mem, addr, esz, signed)?;
                    regs.v[vd][i] = raw;
                }
            }
            fx.mem = Some((start, total, false));
        }
        Lowered::VSt {
            esz,
            vs,
            base,
            index,
        } => {
            let b = base.value(regs);
            let start = b.wrapping_add(regs.r[index as usize].wrapping_mul(esz));
            let total = esz * lanes as u32;
            let vs = vs as usize;
            let mut bulk = false;
            if start.checked_add(total).is_some() {
                if let Ok(bytes) = mem.slice_mut(start, total as usize) {
                    match esz {
                        1 => {
                            for (b, &lane) in bytes.iter_mut().zip(&regs.v[vs]) {
                                *b = lane as u8;
                            }
                        }
                        2 => {
                            for (i, &lane) in regs.v[vs].iter().enumerate() {
                                bytes[2 * i..2 * i + 2]
                                    .copy_from_slice(&(lane as u16).to_le_bytes());
                            }
                        }
                        _ => {
                            for (i, &lane) in regs.v[vs].iter().enumerate() {
                                bytes[4 * i..4 * i + 4].copy_from_slice(&lane.to_le_bytes());
                            }
                        }
                    }
                    bulk = true;
                }
            }
            if !bulk {
                for i in 0..lanes {
                    let addr = start + i as u32 * esz;
                    mem.write(addr, esz, regs.v[vs][i])?;
                }
            }
            fx.mem = Some((start, total, true));
        }
        Lowered::VAlu {
            op,
            elem,
            vd,
            vn,
            vm,
        } => {
            vloop2(regs, vd as usize, vn as usize, vm as usize, |a, b| {
                op.eval_lane(elem, a, b)
            });
        }
        Lowered::VAluImm {
            op,
            elem,
            vd,
            vn,
            imm,
        } => {
            vloop_b(regs, vd as usize, vn as usize, imm, |a, b| {
                op.eval_lane(elem, a, b)
            });
        }
        Lowered::VAluScalar {
            op,
            elem,
            vd,
            vn,
            src,
        } => {
            let broadcast = match src {
                ScalarSrc::R(r) => regs.r[r.index() as usize],
                ScalarSrc::F(fr) => regs.f[fr.index() as usize],
            };
            vloop_b(regs, vd as usize, vn as usize, broadcast, |a, b| {
                op.eval_lane(elem, a, b)
            });
        }
        Lowered::VRedI { op, rd, vn } => {
            let mut acc = regs.r[rd as usize] as i32;
            for &lane in &regs.v[vn as usize] {
                acc = op.eval_i(acc, lane as i32);
            }
            regs.r[rd as usize] = acc as u32;
        }
        Lowered::VRedF { op, fd, vn } => {
            let mut acc = regs.f32(fd);
            for &lane in &regs.v[vn as usize] {
                acc = op.eval_f(acc, f32::from_bits(lane));
            }
            regs.set_f32(fd, acc);
        }
        Lowered::VPerm { vd, vn, map } => {
            regs.scratch.copy_from_slice(&regs.v[vn as usize]);
            let scratch = std::mem::take(&mut regs.scratch);
            for (d, &mi) in regs.v[vd as usize].iter_mut().zip(map.iter()) {
                *d = scratch[mi as usize];
            }
            regs.scratch = scratch;
        }
        Lowered::VSplat { vd, imm } => {
            for lane in &mut regs.v[vd as usize] {
                *lane = imm;
            }
        }
        Lowered::Generic(ref inst) => {
            let o = exec(inst, pc, regs, mem, prog, lanes)?;
            fx.executed = o.executed;
            fx.mem = o.mem;
        }
    }
    Ok(fx)
}

/// Replays a lowered block against the machine with bit-exact scoreboard
/// timing (see the module docs for the equivalence argument). On a fault the
/// already-retired prefix's counters and cycles are flushed exactly as the
/// interpreter would have left them.
///
/// Returns `true` when the block's lowered branch terminator executed (the
/// machine already advanced to the branch's destination); `false` when the
/// terminator is the interpreter's job (the caller advances to
/// [`Block::end`] and steps once).
pub(crate) fn exec_block(m: &mut Machine<'_>, block: &Block) -> Result<bool, SimError> {
    let lanes = m.config.lanes;
    let i_penalty = u64::from(m.config.icache.miss_penalty);
    let d_penalty = u64::from(m.config.dcache.miss_penalty);
    let max_cycles = m.config.max_cycles;
    let c0 = m.cycle;
    // Ledger key, hoisted: a block never crosses a call/return and the
    // translator is idle while blocks run (fallback guards), so the region
    // and its replay status cannot change mid-block. Per-instruction deltas
    // telescope to the block delta, which keeps superblock ledgers
    // byte-identical to the interpreter's.
    let lk = m.ledger.is_some().then(|| {
        let region = m.ledger_region(block.in_micro);
        (region, !block.in_micro && m.failed.contains(&region))
    });
    let mut retired = 0u64;
    let mut vec_retired = 0u64;
    let mut lane_ops = 0u64;
    let mut result = Ok(());
    for li in &block.insts {
        // The interpreter's run loop checks the limit before every step.
        if m.cycle > max_cycles {
            result = Err(SimError::Fault {
                pc: li.pc,
                what: format!("cycle limit {max_cycles} exceeded"),
            });
            break;
        }
        // ---- issue: the readiness checks that survived hoisting ----------
        let mut issue = m.cycle + 1;
        for src in li.srcs.iter().take_while(|s| s.is_some()).flatten() {
            let ready = match src {
                RegRef::Int(i) => m.ready_r[*i as usize],
                RegRef::Fp(i) => m.ready_f[*i as usize],
                RegRef::Vec(i) => m.ready_v[*i as usize],
                RegRef::Flags => m.ready_flags,
            };
            issue = issue.max(ready);
        }
        if !block.in_micro && !m.icache.access(li.pc * 4) {
            issue += i_penalty;
        }
        // ---- execute ------------------------------------------------------
        let fx = match exec_lowered(&li.kind, li.pc, &mut m.regs, &mut m.mem, m.prog, lanes) {
            Ok(fx) => fx,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        // ---- memory timing, writeback, time -------------------------------
        let mut mem_extra = 0u64;
        let mut is_store = false;
        if let Some((addr, len, write)) = fx.mem {
            let misses = m.dcache.access_range(addr, len);
            mem_extra = u64::from(misses) * d_penalty;
            is_store = write;
        }
        let done = issue + u64::from(li.latency) + mem_extra;
        if fx.executed {
            if let Some(d) = li.def {
                match d {
                    RegRef::Int(i) => m.ready_r[i as usize] = done,
                    RegRef::Fp(i) => m.ready_f[i as usize] = done,
                    RegRef::Vec(i) => m.ready_v[i as usize] = done,
                    RegRef::Flags => {}
                }
            }
        }
        if li.writes_flags {
            m.ready_flags = issue + 1;
        }
        let mut busy = issue;
        if is_store {
            busy += mem_extra;
        }
        if let Some((region, replay)) = lk {
            let cat = Machine::exec_category(block.in_micro, li.vector, replay);
            if let Some(led) = m.ledger.as_deref_mut() {
                led.charge(region, li.pc, cat, busy - m.cycle);
            }
        }
        m.cycle = busy;
        retired += 1;
        if li.vector {
            vec_retired += 1;
            lane_ops += u64::from(li.active_lanes);
        }
    }
    // ---- lowered branch terminator ----------------------------------------
    let mut jumped = false;
    if result.is_ok() {
        if let Terminator::Branch {
            pc,
            target,
            cond,
            check_flags,
        } = block.term
        {
            if m.cycle > max_cycles {
                result = Err(SimError::Fault {
                    pc,
                    what: format!("cycle limit {max_cycles} exceeded"),
                });
            } else {
                let mut issue = m.cycle + 1;
                if check_flags {
                    issue = issue.max(m.ready_flags);
                }
                if !block.in_micro && !m.icache.access(pc * 4) {
                    issue += i_penalty;
                }
                let taken = cond.eval(m.regs.flags);
                let mut busy = issue;
                if taken {
                    busy += u64::from(m.config.lat.branch_taken);
                }
                if let Some((region, replay)) = lk {
                    let cat = Machine::exec_category(block.in_micro, false, replay);
                    if let Some(led) = m.ledger.as_deref_mut() {
                        led.charge(region, pc, cat, busy - m.cycle);
                    }
                }
                m.cycle = busy;
                retired += 1; // branches are scalar: no def, no flag write
                m.advance(if taken { target } else { pc + 1 });
                jumped = true;
            }
        }
    }
    // ---- flush batched counters (both exit paths) -------------------------
    m.report.retired += retired;
    m.report.scalar_retired += retired - vec_retired;
    m.report.vector_retired += vec_retired;
    m.report.lane_ops += lane_ops;
    let delta = m.cycle - c0;
    if block.in_micro {
        m.report.phases.micro_cycles += delta;
    } else {
        m.report.phases.scalar_cycles += delta;
    }
    result.map(|()| jumped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use crate::meta::meta_of_code;
    use liquid_simd_isa::asm;

    #[test]
    fn discovery_stops_at_control_flow() {
        let p = asm::assemble(
            r"
.text
main:
    mov r0, #1
    add r1, r0, #2
    cmp r1, #3
    beq done
    mov r2, #9
done:
    halt
",
        )
        .unwrap();
        let meta = meta_of_code(&p.code, &LatencyModel::default(), 0);
        let b = discover(&p.code, &meta, 0, false, &p, 0);
        assert_eq!(b.start, 0);
        assert_eq!(b.insts.len(), 3); // mov, add, cmp — beq terminates
        assert_eq!(b.end(), 3);
        // Restarting on the branch itself yields an empty block.
        let b2 = discover(&p.code, &meta, 3, false, &p, 0);
        assert!(b2.insts.is_empty());
    }

    #[test]
    fn readiness_hoisting_drops_statically_satisfied_checks() {
        // add r1 <- (lat 1); the consumer two slots later needs no check,
        // the consumer in the next slot does (lat 1 <= 1 so it is dropped
        // too); a load's consumer always keeps its check.
        let p = asm::assemble(
            r"
.data
.i32 A: 1, 2, 3, 4

.text
main:
    mov r0, #0
    add r1, r0, #1
    add r2, r1, #1
    ldw r3, [A + r0]
    add r4, r3, #1
    halt
",
        )
        .unwrap();
        let meta = meta_of_code(&p.code, &LatencyModel::default(), 0);
        let b = discover(&p.code, &meta, 0, false, &p, 0);
        assert_eq!(b.insts.len(), 5);
        // mov r0: no in-block defs before it, but r0 was never written in
        // the block, so its (nonexistent) srcs are empty anyway.
        assert!(b.insts[0].srcs[0].is_none());
        // add r1, r0: r0 defined at idx 0 with lat 1 <= 1 — hoisted.
        assert!(b.insts[1].srcs[0].is_none());
        // add r2, r1: r1 defined at idx 1, lat 1 <= 1 — hoisted.
        assert!(b.insts[2].srcs[0].is_none());
        // ldw r3, [A + r0]: r0 exact, hoisted.
        assert!(b.insts[3].srcs[0].is_none());
        // add r4, r3: r3 comes from a load (dynamic mem_extra) — kept.
        assert_eq!(b.insts[4].srcs[0], Some(RegRef::Int(3)));
    }

    #[test]
    fn conditional_defs_stay_dynamic() {
        let p = asm::assemble(
            r"
.text
main:
    cmp r0, #0
    movgt r1, #5
    add r2, r1, #1
    halt
",
        )
        .unwrap();
        let meta = meta_of_code(&p.code, &LatencyModel::default(), 0);
        let b = discover(&p.code, &meta, 0, false, &p, 0);
        // movgt's flags read is hoisted (cmp precedes it in-block)...
        assert!(b.insts[1].srcs.iter().flatten().next().is_none());
        // ...but r1's conditional def keeps the consumer's check.
        assert_eq!(b.insts[2].srcs[0], Some(RegRef::Int(1)));
    }
}
