//! Machine configuration.

use liquid_simd_mem::CacheConfig;
use liquid_simd_trace::Tracer;

/// Functional-unit and structural latencies, in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Simple integer ALU result latency.
    pub int_alu: u32,
    /// Integer multiply result latency.
    pub int_mul: u32,
    /// FP add/sub/min/max result latency.
    pub fp_alu: u32,
    /// FP multiply result latency.
    pub fp_mul: u32,
    /// FP divide result latency.
    pub fp_div: u32,
    /// Load-to-use latency on a D-cache hit.
    pub load: u32,
    /// Pipeline refill cycles charged for every taken branch (the
    /// ARM-926EJ-S has no branch predictor).
    pub branch_taken: u32,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            int_alu: 1,
            int_mul: 3,
            fp_alu: 3,
            fp_mul: 4,
            fp_div: 15,
            load: 1,
            branch_taken: 2,
        }
    }
}

/// Dynamic-translation behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationConfig {
    /// Whether the dynamic translator is present.
    pub enabled: bool,
    /// Hardware translation throughput: cycles charged per observed scalar
    /// instruction before the microcode-cache entry becomes usable. The
    /// paper assumes 1 and shows "tens of cycles" would also be fine
    /// (Table 6 discussion) — sweepable for the latency ablation.
    pub cycles_per_instr: u64,
    /// Software-JIT mode: translation work *stalls the pipeline* (a JIT
    /// shares the CPU, §2) instead of running off the critical path.
    pub jit: bool,
    /// Cycles per observed instruction in JIT mode.
    pub jit_cycles_per_instr: u64,
    /// Also attempt translation of plain `bl` calls (no `bl.v` marker) —
    /// the false-positive-tolerant mode of §3.5.
    pub translate_plain_bl: bool,
    /// Hardware register-state value-field width (forwarded to the
    /// translator; see `TranslatorConfig::value_bits`).
    pub value_bits: u32,
    /// Enforce the value-field width (hardware) or not (JIT).
    pub hw_value_limit: bool,
}

impl Default for TranslationConfig {
    fn default() -> TranslationConfig {
        TranslationConfig {
            enabled: true,
            cycles_per_instr: 1,
            jit: false,
            jit_cycles_per_instr: 40,
            translate_plain_bl: false,
            value_bits: 12,
            hw_value_limit: true,
        }
    }
}

/// Which execution engine drives the machine's fetch/issue/exec/retire
/// loop. Backends are *implementation strategies*, not architecture: every
/// backend must produce bit-identical architectural state, reports, and
/// cycle counts (the conformance oracle and the perf sentinel's
/// cross-backend gate both enforce this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The reference interpreter: one `Machine::step` per instruction.
    #[default]
    Interp,
    /// The superblock engine: straight-line instruction runs are pre-lowered
    /// once into threaded-code blocks and replayed from a block cache.
    Superblock,
}

impl BackendKind {
    /// Stable lowercase name (CLI flag values, perfhist record field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Superblock => "superblock",
        }
    }

    /// Parses a CLI flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "interp" | "interpreter" => Some(BackendKind::Interp),
            "superblock" | "sb" => Some(BackendKind::Superblock),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full machine configuration.
///
/// Equality compares the architectural parameters only; the attached
/// [`MachineConfig::tracer`] is an observer and never affects behaviour,
/// so two configs that differ only in tracing compare equal. The same goes
/// for [`MachineConfig::backend`]: it selects an execution strategy that is
/// required to be observationally identical, so it participates in neither
/// equality nor [`MachineConfig::fingerprint`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// SIMD accelerator width in lanes; `0` means no accelerator (vector
    /// instructions fault, translation is pointless).
    pub lanes: usize,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Latencies.
    pub lat: LatencyModel,
    /// Microcode cache entries (8 in the paper).
    pub mcache_entries: usize,
    /// Microcode cache entry capacity in instructions (64 in the paper).
    pub mcache_uops: usize,
    /// Translation behaviour.
    pub translation: TranslationConfig,
    /// Zeroed bytes mapped after the program's data image.
    pub mem_headroom: usize,
    /// Simulation safety stop.
    pub max_cycles: u64,
    /// Raise an external translator abort every this many retired
    /// instructions (simulated interrupts; `0` disables).
    pub interrupt_every: u64,
    /// Raise an external translator abort when the retired-instruction
    /// count reaches each listed value exactly — deterministic abort-point
    /// injection for the conformance sweep (empty disables). Unlike
    /// [`MachineConfig::interrupt_every`] this targets *one* retire index,
    /// so a sweep can pre-empt a translation at every point of its window.
    pub interrupt_at: Vec<u64>,
    /// Optional event recorder threaded through every component. `None`
    /// (the default) costs one branch per emit site and changes no
    /// simulated timing.
    pub tracer: Option<Tracer>,
    /// Execution engine. Like the tracer, this is excluded from equality
    /// and the fingerprint: backends must be observationally identical.
    pub backend: BackendKind,
    /// Record an exact per-(region, PC, category) cycle ledger during the
    /// run. Off by default; like the tracer, the ledger is an observer —
    /// it never affects simulated timing, so it participates in neither
    /// equality nor [`MachineConfig::fingerprint`].
    pub ledger: bool,
}

impl PartialEq for MachineConfig {
    fn eq(&self, other: &MachineConfig) -> bool {
        self.lanes == other.lanes
            && self.icache == other.icache
            && self.dcache == other.dcache
            && self.lat == other.lat
            && self.mcache_entries == other.mcache_entries
            && self.mcache_uops == other.mcache_uops
            && self.translation == other.translation
            && self.mem_headroom == other.mem_headroom
            && self.max_cycles == other.max_cycles
            && self.interrupt_every == other.interrupt_every
            && self.interrupt_at == other.interrupt_at
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            lanes: 8,
            icache: CacheConfig::arm926_16k(),
            dcache: CacheConfig::arm926_16k(),
            lat: LatencyModel::default(),
            mcache_entries: 8,
            mcache_uops: 64,
            translation: TranslationConfig::default(),
            mem_headroom: 4096,
            max_cycles: 10_000_000_000,
            interrupt_every: 0,
            interrupt_at: Vec::new(),
            tracer: None,
            backend: BackendKind::default(),
            ledger: false,
        }
    }
}

impl MachineConfig {
    /// The paper's baseline: an ARM-926EJ-S with no SIMD accelerator and no
    /// translator (Figure 6's denominator).
    #[must_use]
    pub fn scalar_only() -> MachineConfig {
        MachineConfig {
            lanes: 0,
            translation: TranslationConfig {
                enabled: false,
                ..TranslationConfig::default()
            },
            ..MachineConfig::default()
        }
    }

    /// A Liquid SIMD machine with a `lanes`-wide accelerator and the
    /// hardware dynamic translator.
    #[must_use]
    pub fn liquid(lanes: usize) -> MachineConfig {
        MachineConfig {
            lanes,
            ..MachineConfig::default()
        }
    }

    /// A machine with a `lanes`-wide accelerator executing *native* SIMD
    /// binaries (no translation needed) — the Figure 6 callout comparator.
    #[must_use]
    pub fn native(lanes: usize) -> MachineConfig {
        MachineConfig {
            lanes,
            translation: TranslationConfig {
                enabled: false,
                ..TranslationConfig::default()
            },
            ..MachineConfig::default()
        }
    }

    /// Attaches a tracer (builder style): the machine and every component
    /// under it will record dynamic events into it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> MachineConfig {
        self.tracer = Some(tracer);
        self
    }

    /// Selects the execution backend (builder style).
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> MachineConfig {
        self.backend = backend;
        self
    }

    /// Enables or disables cycle-ledger recording (builder style).
    #[must_use]
    pub fn with_ledger(mut self, ledger: bool) -> MachineConfig {
        self.ledger = ledger;
        self
    }

    /// A stable FNV-1a hash of the architectural parameters — everything
    /// [`PartialEq`] compares, nothing it ignores (the tracer). Two configs
    /// compare equal iff they fingerprint equal, so performance-history
    /// records keyed by this hash are only ever compared like-for-like.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.lanes as u64);
        for c in [&self.icache, &self.dcache] {
            mix(u64::from(c.size_bytes));
            mix(u64::from(c.ways));
            mix(u64::from(c.line_bytes));
            mix(u64::from(c.miss_penalty));
        }
        for l in [
            self.lat.int_alu,
            self.lat.int_mul,
            self.lat.fp_alu,
            self.lat.fp_mul,
            self.lat.fp_div,
            self.lat.load,
            self.lat.branch_taken,
        ] {
            mix(u64::from(l));
        }
        mix(self.mcache_entries as u64);
        mix(self.mcache_uops as u64);
        mix(u64::from(self.translation.enabled));
        mix(self.translation.cycles_per_instr);
        mix(u64::from(self.translation.jit));
        mix(self.translation.jit_cycles_per_instr);
        mix(u64::from(self.translation.translate_plain_bl));
        mix(u64::from(self.translation.value_bits));
        mix(u64::from(self.translation.hw_value_limit));
        mix(self.mem_headroom as u64);
        mix(self.max_cycles);
        mix(self.interrupt_every);
        mix(self.interrupt_at.len() as u64);
        for &at in &self.interrupt_at {
            mix(at);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let s = MachineConfig::scalar_only();
        assert_eq!(s.lanes, 0);
        assert!(!s.translation.enabled);
        let l = MachineConfig::liquid(16);
        assert_eq!(l.lanes, 16);
        assert!(l.translation.enabled);
        let n = MachineConfig::native(4);
        assert!(!n.translation.enabled);
        assert_eq!(n.mcache_entries, 8);
    }

    #[test]
    fn fingerprint_tracks_architectural_equality() {
        let a = MachineConfig::liquid(8);
        let b = MachineConfig::liquid(8).with_tracer(Tracer::default());
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = MachineConfig::liquid(16);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = MachineConfig::liquid(8);
        d.translation.cycles_per_instr = 2;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn backend_is_observer_like_not_architectural() {
        let a = MachineConfig::liquid(8);
        let b = MachineConfig::liquid(8).with_backend(BackendKind::Superblock);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let l = MachineConfig::liquid(8).with_ledger(true);
        assert_eq!(a, l);
        assert_eq!(a.fingerprint(), l.fingerprint());
        assert_eq!(BackendKind::parse("interp"), Some(BackendKind::Interp));
        assert_eq!(BackendKind::parse("sb"), Some(BackendKind::Superblock));
        assert_eq!(BackendKind::parse("jet"), None);
        assert_eq!(BackendKind::Superblock.name(), "superblock");
    }
}
