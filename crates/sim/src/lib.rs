//! Cycle-level processor simulator for the Liquid SIMD reproduction.
//!
//! Models an ARM-926EJ-S-class core — the paper's evaluation vehicle (§5):
//! in-order, single-issue, five-stage, with 16 KB 64-way I/D caches — plus
//! the paper's three additions (Figure 1, grey boxes):
//!
//! * a parameterised **SIMD accelerator** executing VSIMD instructions over
//!   2–16 lanes with the same functional-unit latencies as the scalar core;
//! * a post-retirement **dynamic translation** tap feeding a
//!   [`Translator`](liquid_simd_translator::Translator);
//! * a **microcode cache** ([`Mcache`]) holding translated SIMD loops; calls
//!   to translated functions execute microcode instead of the scalar body.
//!
//! Timing is a scoreboard model: one instruction issues per cycle, stalling
//! on operand readiness (multi-cycle multiplies/divides, load-use delays),
//! plus taken-branch penalties (the ARM9 has no branch predictor) and cache
//! miss penalties. Vector instructions occupy one issue slot and operate on
//! all lanes at once — the source of SIMD speedup, as in the paper's
//! SimpleScalar extension.
//!
//! # Example
//!
//! ```
//! use liquid_simd_isa::asm;
//! use liquid_simd_sim::{Machine, MachineConfig};
//!
//! let p = asm::assemble(r"
//! .data
//! .i32 A: 1, 2, 3, 4
//! .text
//! main:
//!     mov r0, #0
//! top:
//!     ldw r1, [A + r0]
//!     add r1, r1, #10
//!     stw [A + r0], r1
//!     add r0, r0, #1
//!     cmp r0, #4
//!     blt top
//!     halt
//! ").unwrap();
//! let mut m = Machine::new(&p, MachineConfig::scalar_only());
//! let report = m.run().unwrap();
//! assert!(report.halted);
//! let (_, sym) = p.symbol_by_name("A").unwrap();
//! assert_eq!(m.memory().read_signed(sym.addr, 4).unwrap(), 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod block;
mod config;
mod exec;
mod machine;
mod mcache;
pub mod meta;
mod regfile;
mod report;

pub use backend::{ExecBackend, InterpBackend, SuperblockBackend};
pub use config::{BackendKind, LatencyModel, MachineConfig, TranslationConfig};
pub use exec::SimError;
pub use machine::Machine;
pub use mcache::{Mcache, McacheEntryStats, McacheStats};
pub use meta::{InstMeta, RegRef};
pub use report::{
    BlockStats, CallEvent, CallMode, PhaseBreakdown, RunReport, TargetProfile, TranslationWindow,
};

/// Re-exported cycle-ledger vocabulary ([`RunReport::ledger`] is typed
/// against these; see the `liquid-simd-ledger` crate for the full API).
pub use liquid_simd_ledger::{
    Bucket as LedgerBucket, Category as LedgerCategory, Ledger, Snapshot as LedgerSnapshot,
};
