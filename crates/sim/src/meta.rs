//! Predecoded static instruction metadata — the simulator's fast path.
//!
//! `Machine::step()` needs three static facts about every instruction it
//! retires: which registers it reads (operand-readiness stalls), what it
//! defines (scoreboard writeback), and its result latency. Deriving them by
//! matching the `Inst` enum on every retire — as the machine originally did
//! — is pure overhead: the facts never change for a given instruction and
//! machine configuration, and the ISA's `int_uses`/`vec_uses` helpers heap-
//! allocate a `Vec` per call. This module computes an [`InstMeta`] side
//! table exactly once — for the whole program in `Machine::new`, and for
//! each microcode sequence when it is inserted into the microcode cache —
//! so the hot loop does indexed loads instead.
//!
//! The derivation functions ([`collect_uses`], [`def_of`], [`latency_of`])
//! remain the single source of truth: [`InstMeta::compute`] calls them, and
//! the metadata-equivalence property test (`sim/tests/meta_equiv.rs`)
//! checks every live table against fresh recomputation.

use liquid_simd_isa::{Cond, ElemType, FpOp, Inst, ScalarInst, VAluOp, VectorInst};

use crate::config::LatencyModel;

/// A register reference for the timing scoreboard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegRef {
    /// An integer register.
    Int(u8),
    /// A floating-point register.
    Fp(u8),
    /// A vector register.
    Vec(u8),
    /// The condition flags.
    Flags,
}

/// Precomputed static facts about one instruction, for one machine
/// configuration (latency depends on the latency model and lane count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstMeta {
    /// Source registers read at issue, packed front-to-back (no `Some`
    /// follows a `None`).
    pub srcs: [Option<RegRef>; 6],
    /// Scoreboard destination, if any.
    pub def: Option<RegRef>,
    /// Whether the instruction writes the condition flags.
    pub writes_flags: bool,
    /// Result latency in cycles on the configured machine.
    pub latency: u32,
    /// Whether this is a vector instruction.
    pub vector: bool,
    /// Lanes this instruction actually operates on when it retires: the
    /// machine's lane count for most vector instructions, the permute's
    /// block size (capped at the lane count) for `vperm`, and `0` for
    /// scalar instructions. Feeds the lane-utilization counters.
    pub active_lanes: u16,
}

impl InstMeta {
    /// Derives the metadata for one instruction. Called at program load and
    /// microcode insert, never per retire.
    #[must_use]
    pub fn compute(inst: &Inst, lat: &LatencyModel, lanes: usize) -> InstMeta {
        let (def, writes_flags) = def_of(inst);
        InstMeta {
            srcs: collect_uses(inst),
            def,
            writes_flags,
            latency: latency_of(inst, lat, lanes),
            vector: inst.is_vector(),
            active_lanes: active_lanes_of(inst, lanes),
        }
    }
}

/// Derives the metadata table for an instruction sequence.
#[must_use]
pub fn meta_of_code(code: &[Inst], lat: &LatencyModel, lanes: usize) -> Vec<InstMeta> {
    code.iter()
        .map(|i| InstMeta::compute(i, lat, lanes))
        .collect()
}

fn push(buf: &mut [Option<RegRef>; 6], n: &mut usize, rr: RegRef) {
    if *n < buf.len() {
        buf[*n] = Some(rr);
        *n += 1;
    }
}

/// The registers an instruction reads at issue, packed front-to-back.
#[must_use]
pub fn collect_uses(inst: &Inst) -> [Option<RegRef>; 6] {
    let mut buf = [None; 6];
    let mut n = 0;
    match inst {
        Inst::S(s) => {
            for r in s.int_uses() {
                push(&mut buf, &mut n, RegRef::Int(r.index()));
            }
            match s {
                ScalarInst::FAlu { fn_, fm, .. } => {
                    push(&mut buf, &mut n, RegRef::Fp(fn_.index()));
                    push(&mut buf, &mut n, RegRef::Fp(fm.index()));
                }
                ScalarInst::FMov { fm, .. } => push(&mut buf, &mut n, RegRef::Fp(fm.index())),
                ScalarInst::StF { fs, .. } => push(&mut buf, &mut n, RegRef::Fp(fs.index())),
                _ => {}
            }
            let cond = match s {
                ScalarInst::MovImm { cond, .. }
                | ScalarInst::Mov { cond, .. }
                | ScalarInst::Alu { cond, .. }
                | ScalarInst::FMov { cond, .. }
                | ScalarInst::B { cond, .. } => *cond,
                _ => Cond::Al,
            };
            if cond != Cond::Al {
                push(&mut buf, &mut n, RegRef::Flags);
            }
        }
        Inst::V(v) => {
            for vr in v.vec_uses() {
                push(&mut buf, &mut n, RegRef::Vec(vr.index()));
            }
            match v {
                VectorInst::VLd { base, index, .. } | VectorInst::VSt { base, index, .. } => {
                    push(&mut buf, &mut n, RegRef::Int(index.index()));
                    if let liquid_simd_isa::Base::Reg(r) = base {
                        push(&mut buf, &mut n, RegRef::Int(r.index()));
                    }
                }
                VectorInst::VRedI { rd, .. } => push(&mut buf, &mut n, RegRef::Int(rd.index())),
                VectorInst::VRedF { fd, .. } => push(&mut buf, &mut n, RegRef::Fp(fd.index())),
                VectorInst::VAluScalar { src, .. } => match src {
                    liquid_simd_isa::ScalarSrc::R(r) => {
                        push(&mut buf, &mut n, RegRef::Int(r.index()));
                    }
                    liquid_simd_isa::ScalarSrc::F(fr) => {
                        push(&mut buf, &mut n, RegRef::Fp(fr.index()));
                    }
                },
                _ => {}
            }
        }
    }
    buf
}

/// The scoreboard destination of an instruction and whether it writes the
/// condition flags.
#[must_use]
pub fn def_of(inst: &Inst) -> (Option<RegRef>, bool) {
    match inst {
        Inst::S(s) => {
            let def = s
                .int_def()
                .map(|r| RegRef::Int(r.index()))
                .or_else(|| s.fp_def().map(|f| RegRef::Fp(f.index())));
            (def, matches!(s, ScalarInst::Cmp { .. }))
        }
        Inst::V(v) => {
            let def = v.vec_def().map(|r| RegRef::Vec(r.index())).or(match v {
                VectorInst::VRedI { rd, .. } => Some(RegRef::Int(rd.index())),
                VectorInst::VRedF { fd, .. } => Some(RegRef::Fp(fd.index())),
                _ => None,
            });
            (def, false)
        }
    }
}

/// Lanes an instruction occupies when it retires: `0` for scalar
/// instructions, the permute's block size (capped at the machine's lane
/// count — a butterfly over 4-element blocks only touches 4 lanes per
/// block-pair step) for `vperm`, and the full lane count otherwise.
#[must_use]
pub fn active_lanes_of(inst: &Inst, lanes: usize) -> u16 {
    match inst {
        Inst::S(_) => 0,
        Inst::V(VectorInst::VPerm { kind, .. }) => (usize::from(kind.block()).min(lanes)) as u16,
        Inst::V(_) => lanes as u16,
    }
}

/// Result latency of an instruction under a latency model at a lane count.
#[must_use]
pub fn latency_of(inst: &Inst, lat: &LatencyModel, lanes: usize) -> u32 {
    let lanes = lanes.max(2);
    let tree = usize::BITS - (lanes - 1).leading_zeros(); // ceil(log2)
    match inst {
        Inst::S(s) => match s {
            ScalarInst::Alu {
                op: liquid_simd_isa::AluOp::Mul,
                ..
            } => lat.int_mul,
            ScalarInst::FAlu { op, .. } => match op {
                FpOp::Mul => lat.fp_mul,
                FpOp::Div => lat.fp_div,
                _ => lat.fp_alu,
            },
            ScalarInst::LdInt { .. } | ScalarInst::LdF { .. } => lat.load,
            _ => lat.int_alu,
        },
        Inst::V(v) => match v {
            VectorInst::VLd { .. } => lat.load,
            VectorInst::VSt { .. } => lat.int_alu,
            VectorInst::VAlu { op, elem, .. }
            | VectorInst::VAluImm { op, elem, .. }
            | VectorInst::VAluConst { op, elem, .. }
            | VectorInst::VAluScalar { op, elem, .. } => match op {
                VAluOp::Div => lat.fp_div,
                VAluOp::Mul if *elem == ElemType::F32 => lat.fp_mul,
                VAluOp::Mul => lat.int_mul,
                _ if *elem == ElemType::F32 => lat.fp_alu,
                _ => lat.int_alu,
            },
            VectorInst::VRedI { .. } => lat.int_alu + tree,
            VectorInst::VRedF { .. } => lat.fp_alu * tree.max(1),
            VectorInst::VPerm { .. } | VectorInst::VSplat { .. } => lat.int_alu,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::{AluOp, Operand2, RedOp, Reg, VReg};

    #[test]
    fn srcs_are_packed_and_def_recorded() {
        let add = Inst::S(ScalarInst::Alu {
            cond: Cond::Gt,
            op: AluOp::Add,
            rd: Reg::R1,
            rn: Reg::R2,
            op2: Operand2::Reg(Reg::R3),
        });
        let m = InstMeta::compute(&add, &LatencyModel::default(), 8);
        // rn, op2 register, then the predicate's flags read.
        assert_eq!(m.srcs[0], Some(RegRef::Int(2)));
        assert_eq!(m.srcs[1], Some(RegRef::Int(3)));
        assert_eq!(m.srcs[2], Some(RegRef::Flags));
        assert_eq!(m.srcs[3], None);
        assert_eq!(m.def, Some(RegRef::Int(1)));
        assert!(!m.writes_flags);
        assert!(!m.vector);
        assert_eq!(m.latency, LatencyModel::default().int_alu);
    }

    #[test]
    fn reduction_latency_scales_with_lanes() {
        let red = Inst::V(VectorInst::VRedI {
            op: RedOp::Sum,
            elem: ElemType::I32,
            rd: Reg::R1,
            vn: VReg::V0,
        });
        let lat = LatencyModel::default();
        assert_eq!(latency_of(&red, &lat, 2), lat.int_alu + 1);
        assert_eq!(latency_of(&red, &lat, 16), lat.int_alu + 4);
        let m = InstMeta::compute(&red, &lat, 8);
        assert!(m.vector);
        assert_eq!(m.def, Some(RegRef::Int(1)));
        // The accumulator register is also a source.
        assert_eq!(m.srcs[0], Some(RegRef::Vec(0)));
        assert_eq!(m.srcs[1], Some(RegRef::Int(1)));
    }

    #[test]
    fn cmp_writes_flags() {
        let cmp = Inst::S(ScalarInst::Cmp {
            rn: Reg::R0,
            op2: Operand2::Imm(3),
        });
        let (def, flags) = def_of(&cmp);
        assert_eq!(def, None);
        assert!(flags);
    }
}
