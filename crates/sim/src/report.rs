//! Run reports.

use std::collections::BTreeMap;

use liquid_simd_mem::CacheStats;
use liquid_simd_translator::TranslatorStats;

use crate::config::BackendKind;
use crate::mcache::{McacheEntryStats, McacheStats};

/// Superblock-backend telemetry: what the block cache did and when the
/// backend had to fall back to single-step interpretation. All zeros under
/// the interpreter backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Blocks lowered (one per block-cache miss).
    pub lowered: u64,
    /// Total instructions across all lowered blocks (so
    /// `lowered_instrs / lowered` is the average block length).
    pub lowered_instrs: u64,
    /// Dispatches that reused an already-lowered block.
    pub hits: u64,
    /// Dispatches that had to lower a block first.
    pub misses: u64,
    /// Lowered blocks dropped because the microcode they were derived from
    /// was evicted, overwritten, or flushed in the microcode cache.
    pub invalidations: u64,
    /// Instructions retired through lowered blocks (the rest went through
    /// the interpreter: block terminators and fallback steps).
    pub block_instrs: u64,
    /// Fallback steps: a tracer is attached (trace-exact event streams
    /// require the interpreter's per-step stamping).
    pub fallback_tracer: u64,
    /// Fallback steps: the translator had an open window (its
    /// post-retirement tap observes every program-stream retire).
    pub fallback_translator: u64,
    /// Fallback steps: interrupt injection is configured (`interrupt_every`
    /// / `interrupt_at` fire on exact retire indices).
    pub fallback_interrupts: u64,
    /// Fallback steps: the next instruction is control flow (branch, call,
    /// return, halt) — always executed by the interpreter.
    pub fallback_control: u64,
}

impl BlockStats {
    /// Total single-step fallbacks, all reasons.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallback_tracer
            + self.fallback_translator
            + self.fallback_interrupts
            + self.fallback_control
    }

    /// Average lowered-block length in instructions (0 if none).
    #[must_use]
    pub fn avg_block_len(&self) -> f64 {
        if self.lowered == 0 {
            0.0
        } else {
            self.lowered_instrs as f64 / self.lowered as f64
        }
    }

    /// Records the counters into a trace-metrics registry under dotted
    /// `blocks.*` names — the canonical spelling every observability
    /// surface shares (perfhist counters, `explain --json`, the dashboard
    /// delta table).
    pub fn record_metrics(&self, m: &mut liquid_simd_trace::Metrics) {
        m.add("blocks.lowered", self.lowered);
        m.add("blocks.lowered_instrs", self.lowered_instrs);
        m.add("blocks.cache_hits", self.hits);
        m.add("blocks.cache_misses", self.misses);
        m.add("blocks.invalidations", self.invalidations);
        m.add("blocks.instrs", self.block_instrs);
        m.add("blocks.fallback.tracer", self.fallback_tracer);
        m.add("blocks.fallback.translator", self.fallback_translator);
        m.add("blocks.fallback.interrupts", self.fallback_interrupts);
        m.add("blocks.fallback.control", self.fallback_control);
    }

    /// The `blocks.*` counters as a fresh registry (see [`Self::record_metrics`]).
    #[must_use]
    pub fn metrics(&self) -> liquid_simd_trace::Metrics {
        let mut m = liquid_simd_trace::Metrics::new();
        self.record_metrics(&mut m);
        m
    }
}

/// How a call to an outlined function was serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallMode {
    /// Executed the scalar body.
    Scalar,
    /// Executed translated SIMD microcode from the microcode cache.
    Microcode,
}

/// One dynamic call of an outlined (or plain) function — the raw material
/// for the paper's Table 6 (cycles between consecutive calls).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallEvent {
    /// Callee entry PC (code index).
    pub target: u32,
    /// Cycle at which the call issued.
    pub cycle: u64,
    /// How it was serviced.
    pub mode: CallMode,
}

/// One translation attempt's lifetime, in retired-instruction indices.
///
/// `begin_retired` is the retire index of the `bl.v` that started the
/// translation; the first observed body instruction retires at
/// `begin_retired + 1` and the window closes at `end_retired` (the retire
/// index of the `ret` that finished it, or of the instruction whose retire
/// aborted it). The conformance abort sweep replays the run injecting an
/// external abort at every index in `begin_retired..=end_retired`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationWindow {
    /// Entry PC of the outlined function being shadowed.
    pub func_pc: u32,
    /// Retired-instruction count when the translation began.
    pub begin_retired: u64,
    /// Retired-instruction count when it finished or aborted (`0` while
    /// still open — a window left open at halt stays `0`).
    pub end_retired: u64,
    /// Whether the attempt committed microcode (`false`: aborted or open).
    pub completed: bool,
}

/// Where the run's cycles went, partitioned exactly: the three fields sum
/// to [`RunReport::cycles`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Cycles advanced while executing the program (scalar) stream.
    pub scalar_cycles: u64,
    /// Cycles advanced while executing translated microcode.
    pub micro_cycles: u64,
    /// Pipeline-stall cycles charged by a software-JIT translation
    /// (hardware translation runs off the critical path and charges none).
    pub jit_stall_cycles: u64,
}

impl PhaseBreakdown {
    /// Sum of all phases — equals the run's total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.scalar_cycles + self.micro_cycles + self.jit_stall_cycles
    }
}

/// Cycle attribution for one call target: how often and how long it ran
/// in each servicing mode. Cycles are inclusive call-to-return deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TargetProfile {
    /// Calls serviced by the scalar fallback body.
    pub scalar_calls: u64,
    /// Cycles spent inside scalar-serviced calls.
    pub scalar_cycles: u64,
    /// Calls serviced by translated microcode.
    pub micro_calls: u64,
    /// Cycles spent inside microcode-serviced calls.
    pub micro_cycles: u64,
}

impl TargetProfile {
    /// Total cycles attributed to this target.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.scalar_cycles + self.micro_cycles
    }
}

/// Everything measured during one simulation.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Total cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub retired: u64,
    /// Retired scalar instructions.
    pub scalar_retired: u64,
    /// Retired vector instructions.
    pub vector_retired: u64,
    /// Total lane-operations performed by retired vector instructions:
    /// each vector retire contributes its active lane count (`vperm`
    /// contributes its block size). `lane_ops / (vector_retired × lanes)`
    /// is the run's SIMD lane utilization.
    pub lane_ops: u64,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// Translator statistics.
    pub translator: TranslatorStats,
    /// Microcode-cache statistics.
    pub mcache: McacheStats,
    /// Per-function microcode-cache statistics (keyed by entry PC; history
    /// survives eviction, including the evictor's identity).
    pub mcache_entries: BTreeMap<u32, McacheEntryStats>,
    /// Exact cycle partition: scalar vs microcode execution vs JIT stall.
    pub phases: PhaseBreakdown,
    /// Per-call-target cycle attribution, keyed by entry PC.
    pub targets: BTreeMap<u32, TargetProfile>,
    /// Call log (for call-distance analyses).
    pub calls: Vec<CallEvent>,
    /// Completed translations: `(function pc, microcode length)`.
    pub translations: Vec<(u32, usize)>,
    /// Every translation attempt's retired-instruction window, in begin
    /// order (committed, aborted, and still-open attempts alike).
    pub windows: Vec<TranslationWindow>,
    /// Whether the program reached `halt`.
    pub halted: bool,
    /// Which execution backend produced this report. Backends are required
    /// to be observationally identical; everything else in the report is
    /// backend-independent.
    pub backend: BackendKind,
    /// Superblock-backend telemetry (all zeros under the interpreter).
    pub blocks: BlockStats,
    /// Exact per-(region, PC, category) cycle attribution, recorded only
    /// when [`crate::MachineConfig::ledger`] is set. The ledger's cycle sum
    /// equals [`PhaseBreakdown::total`] bit-exactly, and both backends
    /// produce byte-identical ledgers for the same run.
    pub ledger: Option<liquid_simd_ledger::Ledger>,
}

impl RunReport {
    /// Records the report's headline counters into a trace-metrics
    /// registry: cycles and retire mix under their canonical dotted names,
    /// the backend that executed the run as a `backend.<name>.runs` count
    /// (so a registry merged across many runs — or across serve shards —
    /// shows how work split between backends), and the `blocks.*`
    /// telemetry via [`BlockStats::record_metrics`].
    pub fn record_metrics(&self, m: &mut liquid_simd_trace::Metrics) {
        m.add("cycles", self.cycles);
        m.add("retired", self.retired);
        m.add("retired.scalar", self.scalar_retired);
        m.add("retired.vector", self.vector_retired);
        m.add("lanes.ops", self.lane_ops);
        m.add(&format!("backend.{}.runs", self.backend.name()), 1);
        m.add(
            &format!("backend.{}.cycles", self.backend.name()),
            self.cycles,
        );
        self.blocks.record_metrics(m);
        if let Some(ledger) = &self.ledger {
            for (cat, bucket) in ledger.category_totals() {
                m.add(&format!("ledger.{}.cycles", cat.name()), bucket.cycles);
                m.add(&format!("ledger.{}.events", cat.name()), bucket.events);
            }
        }
    }

    /// The headline counters as a fresh registry (see
    /// [`Self::record_metrics`]).
    #[must_use]
    pub fn metrics(&self) -> liquid_simd_trace::Metrics {
        let mut m = liquid_simd_trace::Metrics::new();
        self.record_metrics(&mut m);
        m
    }

    /// Cycles between the first two calls of `target` (paper Table 6).
    #[must_use]
    pub fn first_call_gap(&self, target: u32) -> Option<u64> {
        let mut calls = self.calls.iter().filter(|c| c.target == target);
        let first = calls.next()?.cycle;
        let second = calls.next()?.cycle;
        Some(second - first)
    }

    /// Entry PCs of every distinct call target, in first-call order.
    #[must_use]
    pub fn call_targets(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for c in &self.calls {
            if !out.contains(&c.target) {
                out.push(c.target);
            }
        }
        out
    }

    /// Fraction of calls to `target` serviced by microcode.
    #[must_use]
    pub fn microcode_fraction(&self, target: u32) -> f64 {
        let (total, micro) = self
            .calls
            .iter()
            .filter(|c| c.target == target)
            .fold((0u64, 0u64), |(t, m), c| {
                (t + 1, m + u64::from(c.mode == CallMode::Microcode))
            });
        if total == 0 {
            0.0
        } else {
            micro as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_stats_metrics_use_stable_dotted_names() {
        let b = BlockStats {
            lowered: 2,
            lowered_instrs: 10,
            hits: 7,
            misses: 2,
            invalidations: 1,
            block_instrs: 80,
            fallback_tracer: 0,
            fallback_translator: 3,
            fallback_interrupts: 0,
            fallback_control: 11,
        };
        let m = b.metrics();
        assert_eq!(m.counter("blocks.lowered"), 2);
        assert_eq!(m.counter("blocks.cache_hits"), 7);
        assert_eq!(m.counter("blocks.invalidations"), 1);
        assert_eq!(m.counter("blocks.fallback.control"), 11);
        assert_eq!(m.with_prefix("blocks.").len(), 10);
        assert!((b.avg_block_len() - 5.0).abs() < 1e-12);
        assert_eq!(b.fallbacks(), 14);
    }

    #[test]
    fn run_report_metrics_tag_the_backend() {
        let r = RunReport {
            cycles: 500,
            retired: 100,
            scalar_retired: 60,
            vector_retired: 40,
            backend: BackendKind::Superblock,
            ..RunReport::default()
        };
        let m = r.metrics();
        assert_eq!(m.counter("cycles"), 500);
        assert_eq!(m.counter("backend.superblock.runs"), 1);
        assert_eq!(m.counter("backend.superblock.cycles"), 500);
        assert_eq!(m.counter("backend.interp.runs"), 0);
        // Merging two runs from different backends keeps both tags.
        let mut merged = m;
        merged.merge(&RunReport::default().metrics());
        assert_eq!(merged.counter("backend.superblock.runs"), 1);
        assert_eq!(merged.counter("backend.interp.runs"), 1);
    }

    #[test]
    fn call_gap_and_fraction() {
        let r = RunReport {
            calls: vec![
                CallEvent {
                    target: 5,
                    cycle: 100,
                    mode: CallMode::Scalar,
                },
                CallEvent {
                    target: 9,
                    cycle: 200,
                    mode: CallMode::Scalar,
                },
                CallEvent {
                    target: 5,
                    cycle: 450,
                    mode: CallMode::Microcode,
                },
            ],
            ..RunReport::default()
        };
        assert_eq!(r.first_call_gap(5), Some(350));
        assert_eq!(r.first_call_gap(9), None);
        assert_eq!(r.call_targets(), vec![5, 9]);
        assert!((r.microcode_fraction(5) - 0.5).abs() < 1e-12);
        assert_eq!(r.microcode_fraction(7), 0.0);
    }
}
