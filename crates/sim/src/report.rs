//! Run reports.

use liquid_simd_mem::CacheStats;
use liquid_simd_translator::TranslatorStats;

use crate::mcache::McacheStats;

/// How a call to an outlined function was serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallMode {
    /// Executed the scalar body.
    Scalar,
    /// Executed translated SIMD microcode from the microcode cache.
    Microcode,
}

/// One dynamic call of an outlined (or plain) function — the raw material
/// for the paper's Table 6 (cycles between consecutive calls).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallEvent {
    /// Callee entry PC (code index).
    pub target: u32,
    /// Cycle at which the call issued.
    pub cycle: u64,
    /// How it was serviced.
    pub mode: CallMode,
}

/// Everything measured during one simulation.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Total cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub retired: u64,
    /// Retired scalar instructions.
    pub scalar_retired: u64,
    /// Retired vector instructions.
    pub vector_retired: u64,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// Translator statistics.
    pub translator: TranslatorStats,
    /// Microcode-cache statistics.
    pub mcache: McacheStats,
    /// Call log (for call-distance analyses).
    pub calls: Vec<CallEvent>,
    /// Completed translations: `(function pc, microcode length)`.
    pub translations: Vec<(u32, usize)>,
    /// Whether the program reached `halt`.
    pub halted: bool,
}

impl RunReport {
    /// Cycles between the first two calls of `target` (paper Table 6).
    #[must_use]
    pub fn first_call_gap(&self, target: u32) -> Option<u64> {
        let mut calls = self.calls.iter().filter(|c| c.target == target);
        let first = calls.next()?.cycle;
        let second = calls.next()?.cycle;
        Some(second - first)
    }

    /// Entry PCs of every distinct call target, in first-call order.
    #[must_use]
    pub fn call_targets(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for c in &self.calls {
            if !out.contains(&c.target) {
                out.push(c.target);
            }
        }
        out
    }

    /// Fraction of calls to `target` serviced by microcode.
    #[must_use]
    pub fn microcode_fraction(&self, target: u32) -> f64 {
        let (total, micro) = self
            .calls
            .iter()
            .filter(|c| c.target == target)
            .fold((0u64, 0u64), |(t, m), c| {
                (t + 1, m + u64::from(c.mode == CallMode::Microcode))
            });
        if total == 0 {
            0.0
        } else {
            micro as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_gap_and_fraction() {
        let r = RunReport {
            calls: vec![
                CallEvent {
                    target: 5,
                    cycle: 100,
                    mode: CallMode::Scalar,
                },
                CallEvent {
                    target: 9,
                    cycle: 200,
                    mode: CallMode::Scalar,
                },
                CallEvent {
                    target: 5,
                    cycle: 450,
                    mode: CallMode::Microcode,
                },
            ],
            ..RunReport::default()
        };
        assert_eq!(r.first_call_gap(5), Some(350));
        assert_eq!(r.first_call_gap(9), None);
        assert_eq!(r.call_targets(), vec![5, 9]);
        assert!((r.microcode_fraction(5) - 0.5).abs() < 1e-12);
        assert_eq!(r.microcode_fraction(7), 0.0);
    }
}
