//! The simulated machine: functional execution + scoreboard timing +
//! Liquid SIMD translation plumbing.

use std::collections::HashSet;

use liquid_simd_isa::{Inst, Program};
use liquid_simd_ledger::{Category, Ledger, TOP_REGION};
use liquid_simd_mem::{Cache, Memory};
use liquid_simd_trace::{CacheKind, CallMode as TraceCallMode, SpanId, TraceEvent, Tracer, Track};
use liquid_simd_translator::{Progress, Retired, Translator, TranslatorConfig};

use crate::backend::{ExecBackend, InterpBackend, SuperblockBackend};
use crate::config::{BackendKind, MachineConfig};
use crate::exec::{exec, Control, SimError};
use crate::mcache::{Lookup, Mcache};
use crate::meta::{meta_of_code, InstMeta, RegRef};
use crate::regfile::RegFile;
use crate::report::{CallEvent, CallMode, RunReport, TranslationWindow};

/// Instruction source: the program binary or a microcode-cache entry.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Stream {
    Prog {
        pc: u32,
    },
    Micro {
        idx: usize,
        pos: u32,
        ret_pc: u32,
        /// Cycle at which this microcode call entered (target profiling).
        entered: u64,
    },
}

/// The simulated machine.
///
/// Construct with a program and configuration, then call [`Machine::run`].
/// After the run, [`Machine::memory`] exposes final memory for gold-output
/// comparison.
pub struct Machine<'p> {
    pub(crate) prog: &'p Program,
    /// Predecoded static metadata for `prog.code`, indexed by PC — the
    /// step-loop fast path (see `crate::meta`).
    pub(crate) prog_meta: Vec<InstMeta>,
    pub(crate) config: MachineConfig,
    pub(crate) regs: RegFile,
    pub(crate) mem: Memory,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) mcache: Mcache,
    pub(crate) translator: Translator,
    /// Entry PC of the function currently being translated, if any.
    translating: Option<u32>,
    /// Index into `report.windows` of the open translation window, if any.
    window: Option<usize>,
    /// Functions that aborted translation for a permanent (non-external)
    /// reason; retrying them every call would only waste the translator.
    pub(crate) failed: HashSet<u32>,
    pub(crate) cycle: u64,
    pub(crate) ready_r: [u64; 16],
    pub(crate) ready_f: [u64; 16],
    pub(crate) ready_v: [u64; 16],
    pub(crate) ready_flags: u64,
    pub(crate) stream: Stream,
    pub(crate) report: RunReport,
    /// Optional event recorder (cloned from the config; the same handle is
    /// attached to the caches and the translator).
    pub(crate) tracer: Option<Tracer>,
    /// Scalar calls in flight: `(entry pc, call cycle)`, for `CallExit`
    /// events and per-target cycle attribution.
    pub(crate) scalar_stack: Vec<(u32, u64)>,
    /// Exact per-(region, PC, category) cycle attribution, present only
    /// when [`MachineConfig::ledger`] is set. Boxed so the off case costs
    /// one pointer; like the tracer, it never affects simulated timing.
    pub(crate) ledger: Option<Box<Ledger>>,
    /// The open execution-phase span and whether it covers microcode
    /// (tracer only): `exec:scalar` / `exec:microcode` segments tile the
    /// whole run, so their cycle totals sum to the run's cycle count.
    exec_span: Option<(SpanId, bool)>,
}

impl<'p> Machine<'p> {
    /// Creates a machine with the program's data segment loaded.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation — construct programs through
    /// the builder/assembler/compiler, which already validate.
    #[must_use]
    pub fn new(prog: &'p Program, config: MachineConfig) -> Machine<'p> {
        prog.validate().expect("program must be valid");
        let mem = Memory::with_image(prog.data_base, &prog.data, config.mem_headroom);
        let tconfig = TranslatorConfig {
            lanes: config.lanes.max(1),
            max_uops: config.mcache_uops,
            value_bits: config.translation.value_bits,
            hw_value_limit: config.translation.hw_value_limit,
        };
        let tracer = config.tracer.clone();
        let mut icache = Cache::new(config.icache);
        let mut dcache = Cache::new(config.dcache);
        let mut translator = Translator::new(tconfig);
        if let Some(t) = &tracer {
            icache.attach_tracer(t.clone(), CacheKind::Instruction);
            dcache.attach_tracer(t.clone(), CacheKind::Data);
            translator.attach_tracer(t.clone());
        }
        Machine {
            prog,
            prog_meta: meta_of_code(&prog.code, &config.lat, config.lanes),
            regs: RegFile::new(config.lanes.max(1)),
            mem,
            icache,
            dcache,
            mcache: Mcache::new(config.mcache_entries, config.mcache_uops),
            translator,
            translating: None,
            window: None,
            failed: HashSet::new(),
            cycle: 0,
            ready_r: [0; 16],
            ready_f: [0; 16],
            ready_v: [0; 16],
            ready_flags: 0,
            stream: Stream::Prog { pc: prog.entry },
            report: RunReport::default(),
            tracer,
            scalar_stack: Vec::new(),
            ledger: config.ledger.then(|| Box::new(Ledger::new())),
            exec_span: None,
            config,
        }
    }

    /// The machine's memory (inspect after a run).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Snapshots translated microcode after a run (see
    /// [`Machine::preload_microcode`]).
    #[must_use]
    pub fn microcode_snapshot(&self) -> Vec<(u32, Vec<liquid_simd_isa::Inst>)> {
        self.mcache.snapshot()
    }

    /// Preloads microcode valid from cycle 0 — models a processor with
    /// *built-in* ISA support for these SIMD sequences (the paper's
    /// Figure 6 callout comparator: "the simulator treated outlined
    /// functions like native SIMD code"). Combine with harvested microcode
    /// from a prior run of the same binary.
    pub fn preload_microcode(&mut self, entries: &[(u32, Vec<liquid_simd_isa::Inst>)]) {
        for (pc, code) in entries {
            let meta = meta_of_code(code, &self.config.lat, self.config.lanes);
            let _ = self.mcache.insert(*pc, code.clone(), meta, 0);
        }
    }

    /// Test hook: checks every predecoded metadata table (program and
    /// resident microcode) against fresh recomputation. The metadata-
    /// equivalence property test calls this after runs that insert and
    /// evict microcode.
    #[doc(hidden)]
    #[must_use]
    pub fn metadata_consistent(&self) -> bool {
        if self.prog_meta != meta_of_code(&self.prog.code, &self.config.lat, self.config.lanes) {
            return false;
        }
        (0..self.mcache.len()).all(|idx| {
            self.mcache.meta(idx)
                == meta_of_code(self.mcache.code(idx), &self.config.lat, self.config.lanes)
        })
    }

    /// Invalidates the whole microcode cache and aborts any in-flight
    /// translation — the paper's context-switch behaviour (§4.1: microcode
    /// is not architectural state and is simply dropped).
    pub fn flush_microcode(&mut self) {
        let entries = self.mcache.flush();
        self.close_window(false);
        self.translator.abort_external("context-switch");
        self.translating = None;
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::McacheInvalidate {
                entries: entries as u64,
            });
        }
    }

    /// The architectural registers (inspect after a run).
    #[must_use]
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Runs until `halt`, producing the measurement report. The execution
    /// engine is selected by [`MachineConfig::backend`]; all backends are
    /// observationally identical.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on memory faults, wild control flow, or when the
    /// configured cycle limit is exceeded.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        match self.config.backend {
            BackendKind::Interp => self.run_with(&mut InterpBackend),
            BackendKind::Superblock => self.run_with(&mut SuperblockBackend::new()),
        }
    }

    /// Runs to `halt` under an explicit execution backend. The report's
    /// `backend` field is stamped from the config, so callers driving a
    /// hand-built backend should keep the config consistent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`Machine::run`] does.
    pub fn run_with(&mut self, backend: &mut dyn ExecBackend) -> Result<RunReport, SimError> {
        loop {
            if backend.dispatch(self)? {
                break;
            }
        }
        if let Some(t) = &self.tracer {
            t.set_now(self.cycle);
            if let Some((span, _)) = self.exec_span.take() {
                t.span_end(span);
            }
        }
        // Calls still on the stack at halt get attributed up to the end.
        while let Some((target, entered)) = self.scalar_stack.pop() {
            let tp = self.report.targets.entry(target).or_default();
            tp.scalar_cycles += self.cycle - entered;
        }
        let mut report = std::mem::take(&mut self.report);
        report.cycles = self.cycle;
        report.icache = self.icache.stats();
        report.dcache = self.dcache.stats();
        report.translator = self.translator.stats().clone();
        report.mcache = self.mcache.stats();
        report.mcache_entries = self.mcache.entry_stats().clone();
        report.halted = true;
        report.backend = self.config.backend;
        report.blocks = backend.block_stats();
        report.ledger = self.ledger.take().map(|b| *b);
        Ok(report)
    }

    pub(crate) fn current_pc(&self) -> u32 {
        match self.stream {
            Stream::Prog { pc } => pc,
            Stream::Micro { pos, .. } => pos,
        }
    }

    /// Executes one instruction; returns `true` on halt.
    ///
    /// The hot path reads predecoded [`InstMeta`] (uses/def/flags/latency)
    /// from the side tables built at construction and at microcode insert,
    /// instead of re-deriving them from the `Inst` enum on every retire.
    /// The tracer clock is stamped once per step, at retire; emission sites
    /// between retires reuse that stamp, which matches the cycle the old
    /// start-of-step stamp would have produced (machine time only advances
    /// at retire).
    #[allow(clippy::too_many_lines)]
    pub(crate) fn step(&mut self) -> Result<bool, SimError> {
        // ---- fetch -------------------------------------------------------
        let (inst, meta, pc, in_micro) = match self.stream {
            Stream::Prog { pc } => {
                let inst = *self.prog.code.get(pc as usize).ok_or(SimError::Fault {
                    pc,
                    what: "fell off the end of the code section".to_string(),
                })?;
                (inst, self.prog_meta[pc as usize], pc, false)
            }
            Stream::Micro { idx, pos, .. } => {
                let code = self.mcache.code(idx);
                let inst = *code.get(pos as usize).ok_or(SimError::Fault {
                    pc: pos,
                    what: "fell off the end of microcode".to_string(),
                })?;
                (inst, self.mcache.meta(idx)[pos as usize], pos, true)
            }
        };

        // Execution-phase spans: open/rotate a `exec:scalar`/`exec:microcode`
        // segment whenever the stream mode flips. Boundaries land on the
        // previous retire stamp, so consecutive segments tile the run and
        // their cycle totals sum to the final cycle count.
        if let Some(t) = &self.tracer {
            let rotate = self.exec_span.is_none_or(|(_, micro)| micro != in_micro);
            if rotate {
                if let Some((span, _)) = self.exec_span.take() {
                    t.span_end(span);
                }
                let name = if in_micro {
                    "exec:microcode"
                } else {
                    "exec:scalar"
                };
                self.exec_span = Some((t.span_begin(Track::Pipeline, name), in_micro));
            }
        }
        let cycle_before = self.cycle;

        // ---- issue: operand readiness ------------------------------------
        let mut issue = self.cycle + 1;
        for src in meta.srcs.iter().take_while(|s| s.is_some()).flatten() {
            let ready = match src {
                RegRef::Int(i) => self.ready_r[*i as usize],
                RegRef::Fp(i) => self.ready_f[*i as usize],
                RegRef::Vec(i) => self.ready_v[*i as usize],
                RegRef::Flags => self.ready_flags,
            };
            issue = issue.max(ready);
        }

        // Fetch stall: instruction cache (program stream only; microcode is
        // fetched from the dedicated microcode SRAM).
        if !in_micro && !self.icache.access(pc * 4) {
            issue += u64::from(self.config.icache.miss_penalty);
        }

        // ---- execute ------------------------------------------------------
        let outcome = exec(
            &inst,
            pc,
            &mut self.regs,
            &mut self.mem,
            self.prog,
            self.config.lanes,
        )?;

        // ---- memory timing -------------------------------------------------
        let mut mem_extra = 0u64;
        if let Some((addr, len, _)) = outcome.mem {
            let misses = self.dcache.access_range(addr, len);
            mem_extra = u64::from(misses) * u64::from(self.config.dcache.miss_penalty);
        }

        // ---- latency & writeback -------------------------------------------
        let done = issue + u64::from(meta.latency) + mem_extra;
        if outcome.executed {
            if let Some(d) = meta.def {
                match d {
                    RegRef::Int(i) => self.ready_r[i as usize] = done,
                    RegRef::Fp(i) => self.ready_f[i as usize] = done,
                    RegRef::Vec(i) => self.ready_v[i as usize] = done,
                    RegRef::Flags => {}
                }
            }
        }
        if meta.writes_flags {
            self.ready_flags = issue + 1;
        }

        // ---- advance machine time ------------------------------------------
        let is_store = matches!(outcome.mem, Some((_, _, true)));
        let mut busy = issue;
        if is_store {
            busy += mem_extra; // write-allocate fill occupies the interface
        }
        if outcome.taken {
            busy += u64::from(self.config.lat.branch_taken);
        }
        self.cycle = busy;
        let exec_delta = self.cycle - cycle_before;
        if in_micro {
            self.report.phases.micro_cycles += exec_delta;
        } else {
            self.report.phases.scalar_cycles += exec_delta;
        }
        if self.ledger.is_some() {
            self.ledger_charge_exec(pc, in_micro, meta.vector, exec_delta);
        }

        // ---- retire counters ------------------------------------------------
        self.report.retired += 1;
        if meta.vector {
            self.report.vector_retired += 1;
            self.report.lane_ops += u64::from(meta.active_lanes);
        } else {
            self.report.scalar_retired += 1;
        }
        if let Some(t) = &self.tracer {
            t.set_now(self.cycle);
            t.emit(TraceEvent::InstrRetired {
                pc,
                vector: meta.vector,
            });
        }
        if self.config.interrupt_every > 0
            && self
                .report
                .retired
                .is_multiple_of(self.config.interrupt_every)
        {
            if let Some(t) = &self.tracer {
                t.emit(TraceEvent::InterruptInjected {
                    retired: self.report.retired,
                });
            }
            self.close_window(false);
            self.translator.abort_external("interrupt");
            self.translating = None;
        }
        if !self.config.interrupt_at.is_empty()
            && self.config.interrupt_at.contains(&self.report.retired)
        {
            if let Some(t) = &self.tracer {
                t.emit(TraceEvent::InterruptInjected {
                    retired: self.report.retired,
                });
            }
            self.close_window(false);
            self.translator.abort_external("injected-abort");
            self.translating = None;
        }

        // ---- translator tap (post-retirement, program stream only) ---------
        if !in_micro && self.translator.is_active() {
            if let Inst::S(s) = inst {
                let retired = Retired {
                    pc,
                    inst: s,
                    executed: outcome.executed,
                    value: outcome.value,
                    taken: outcome.taken,
                };
                match self.translator.observe(&retired) {
                    Progress::Ongoing => {}
                    Progress::Finished(tr) => {
                        let work = tr.dynamic_instrs;
                        let valid_at = if self.config.translation.jit {
                            // A software JIT shares the CPU: stall the
                            // pipeline for the translation work.
                            let stall = work * self.config.translation.jit_cycles_per_instr;
                            self.cycle += stall;
                            self.report.phases.jit_stall_cycles += stall;
                            if let Some(t) = &self.tracer {
                                // The clock moved after the retire stamp;
                                // restamp so later events carry the stall.
                                t.set_now(self.cycle);
                            }
                            self.cycle
                        } else {
                            self.cycle + work * self.config.translation.cycles_per_instr
                        };
                        if let Some(led) = self.ledger.as_deref_mut() {
                            // Hardware translation runs off the critical
                            // path: record the completion as a 0-cycle
                            // event. A software JIT stalls the pipeline, so
                            // its stall cycles land here too.
                            if self.config.translation.jit {
                                led.charge(
                                    tr.func_pc,
                                    tr.func_pc,
                                    Category::TranslateOverhead,
                                    work * self.config.translation.jit_cycles_per_instr,
                                );
                            } else {
                                led.event(tr.func_pc, tr.func_pc, Category::TranslateOverhead);
                            }
                        }
                        self.report.translations.push((tr.func_pc, tr.code.len()));
                        let uops = tr.code.len() as u64;
                        let meta = meta_of_code(&tr.code, &self.config.lat, self.config.lanes);
                        let evicted = self.mcache.insert(tr.func_pc, tr.code, meta, valid_at);
                        if let Some(t) = &self.tracer {
                            if let Some(victim) = evicted {
                                t.emit(TraceEvent::McacheEvict { func_pc: victim });
                            }
                            t.emit(TraceEvent::McacheInsert {
                                func_pc: tr.func_pc,
                                uops,
                            });
                        }
                        self.close_window(true);
                        self.translating = None;
                    }
                    Progress::Aborted(reason) => {
                        self.close_window(false);
                        if !matches!(reason, liquid_simd_translator::AbortReason::External { .. }) {
                            // Deterministic failure: don't retry every call.
                            // (External aborts — interrupts — retry later.)
                            if let Some(f) = self.translating_target() {
                                self.failed.insert(f);
                                if let Some(led) = self.ledger.as_deref_mut() {
                                    // Marks the moment this target became a
                                    // permanent scalar-replay region; later
                                    // cycles in it charge to abort-replay.
                                    led.event(f, f, Category::AbortReplay);
                                }
                            }
                        }
                        self.translating = None;
                    }
                }
            }
        }

        // ---- control flow ----------------------------------------------------
        match outcome.control {
            Control::Next => {
                self.advance(pc + 1);
            }
            Control::Jump(t) => {
                if outcome.taken {
                    self.advance(t);
                } else {
                    self.advance(pc + 1);
                }
            }
            Control::Call {
                target,
                vectorizable,
            } => {
                if in_micro {
                    return Err(SimError::Fault {
                        pc,
                        what: "call inside microcode".to_string(),
                    });
                }
                self.handle_call(pc, target, vectorizable)?;
            }
            Control::Return => match self.stream {
                Stream::Micro {
                    idx,
                    ret_pc,
                    entered,
                    ..
                } => {
                    let target = self.mcache.func_pc(idx);
                    let tp = self.report.targets.entry(target).or_default();
                    tp.micro_cycles += self.cycle - entered;
                    if let Some(t) = &self.tracer {
                        t.emit(TraceEvent::CallExit {
                            target,
                            mode: TraceCallMode::Simd,
                        });
                    }
                    self.stream = Stream::Prog { pc: ret_pc };
                }
                Stream::Prog { .. } => {
                    let ret = self.regs.r[14];
                    if ret as usize >= self.prog.code.len() {
                        return Err(SimError::Fault {
                            pc,
                            what: format!("return to wild address @{ret}"),
                        });
                    }
                    if let Some((target, entered)) = self.scalar_stack.pop() {
                        let tp = self.report.targets.entry(target).or_default();
                        tp.scalar_cycles += self.cycle - entered;
                        if let Some(t) = &self.tracer {
                            t.emit(TraceEvent::CallExit {
                                target,
                                mode: TraceCallMode::Scalar,
                            });
                        }
                    }
                    self.stream = Stream::Prog { pc: ret };
                }
            },
            Control::Halt => return Ok(true),
        }
        Ok(false)
    }

    /// The ledger region of the current stream position: the microcode
    /// entry's function PC, the innermost in-flight scalar call target, or
    /// [`TOP_REGION`] outside any call.
    pub(crate) fn ledger_region(&self, in_micro: bool) -> u32 {
        if in_micro {
            match self.stream {
                Stream::Micro { idx, .. } => self.mcache.func_pc(idx),
                Stream::Prog { .. } => TOP_REGION,
            }
        } else {
            self.scalar_stack.last().map_or(TOP_REGION, |&(t, _)| t)
        }
    }

    /// The execution category of one retire: microcode and vector retires
    /// are vector-execute; scalar retires inside a permanently-aborted
    /// region are the abort's scalar replay; everything else is plain
    /// scalar execution.
    pub(crate) fn exec_category(in_micro: bool, vector: bool, replay: bool) -> Category {
        if in_micro || vector {
            Category::VectorExecute
        } else if replay {
            Category::AbortReplay
        } else {
            Category::ScalarExecute
        }
    }

    /// Charges one retire's cycle delta to the ledger (cold path; callers
    /// guard on `self.ledger.is_some()` so the common ledger-off run pays
    /// one branch).
    pub(crate) fn ledger_charge_exec(&mut self, pc: u32, in_micro: bool, vector: bool, delta: u64) {
        let region = self.ledger_region(in_micro);
        let replay = !in_micro && self.failed.contains(&region);
        let category = Self::exec_category(in_micro, vector, replay);
        if let Some(led) = self.ledger.as_deref_mut() {
            led.charge(region, pc, category, delta);
        }
    }

    /// Closes the open translation window (if any) at the current retired
    /// count. Call on every translator-lifecycle end — commit, translation
    /// abort, or external abort — so the window log stays exact.
    fn close_window(&mut self, completed: bool) {
        if let Some(i) = self.window.take() {
            let w = &mut self.report.windows[i];
            w.end_retired = self.report.retired;
            w.completed = completed;
        }
    }

    pub(crate) fn advance(&mut self, next: u32) {
        match &mut self.stream {
            Stream::Prog { pc } => *pc = next,
            Stream::Micro { pos, .. } => *pos = next,
        }
    }

    fn translating_target(&self) -> Option<u32> {
        self.translating
    }

    fn handle_call(&mut self, pc: u32, target: u32, vectorizable: bool) -> Result<(), SimError> {
        let t = &self.config.translation;
        let candidate = t.enabled
            && self.config.lanes >= 2
            && (vectorizable || t.translate_plain_bl)
            && !self.failed.contains(&target);
        let mut mode = CallMode::Scalar;
        if candidate {
            let lookup = self.mcache.lookup(target, self.cycle);
            if let Some(led) = self.ledger.as_deref_mut() {
                // Probe/hit/miss bookkeeping is free in the timing model;
                // the ledger records them as 0-cycle events so `diff` can
                // corroborate cycle movement with dispatch behaviour.
                led.event(target, pc, Category::McacheProbe);
                match lookup {
                    Lookup::Hit(_) => led.event(target, pc, Category::Dispatch),
                    Lookup::Miss => led.event(target, pc, Category::McacheMiss),
                    Lookup::Pending => {}
                }
            }
            if let Some(t) = &self.tracer {
                t.emit(match lookup {
                    Lookup::Hit(_) => TraceEvent::McacheHit { func_pc: target },
                    Lookup::Pending => TraceEvent::McachePending { func_pc: target },
                    Lookup::Miss => TraceEvent::McacheMiss { func_pc: target },
                });
            }
            match lookup {
                Lookup::Hit(idx) => {
                    mode = CallMode::Microcode;
                    self.report.calls.push(CallEvent {
                        target,
                        cycle: self.cycle,
                        mode,
                    });
                    self.report.targets.entry(target).or_default().micro_calls += 1;
                    if let Some(t) = &self.tracer {
                        t.emit(TraceEvent::CallEnter {
                            target,
                            mode: TraceCallMode::Simd,
                        });
                    }
                    self.stream = Stream::Micro {
                        idx,
                        pos: 0,
                        ret_pc: pc + 1,
                        entered: self.cycle,
                    };
                    return Ok(());
                }
                Lookup::Pending => {}
                Lookup::Miss => {
                    if !self.translator.is_active() {
                        self.translator.begin(target);
                        self.translating = Some(target);
                        self.window = Some(self.report.windows.len());
                        self.report.windows.push(TranslationWindow {
                            func_pc: target,
                            begin_retired: self.report.retired,
                            end_retired: 0,
                            completed: false,
                        });
                    }
                }
            }
        }
        self.report.calls.push(CallEvent {
            target,
            cycle: self.cycle,
            mode,
        });
        self.report.targets.entry(target).or_default().scalar_calls += 1;
        if let Some(t) = &self.tracer {
            t.emit(TraceEvent::CallEnter {
                target,
                mode: TraceCallMode::Scalar,
            });
        }
        self.scalar_stack.push((target, self.cycle));
        self.stream = Stream::Prog { pc: target };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::asm;

    fn assemble(src: &str) -> Program {
        asm::assemble(src).expect("assembles")
    }

    const SUM_LOOP: &str = r"
.data
.i32 A: 1, 2, 3, 4, 5, 6, 7, 8

.text
main:
    mov r1, #0
    mov r0, #0
top:
    ldw r2, [A + r0]
    add r1, r1, r2
    add r0, r0, #1
    cmp r0, #8
    blt top
    halt
";

    #[test]
    fn scalar_sum_loop() {
        let p = assemble(SUM_LOOP);
        let mut m = Machine::new(&p, MachineConfig::scalar_only());
        let report = m.run().unwrap();
        assert!(report.halted);
        assert_eq!(m.regs().r[1], 36);
        assert!(report.cycles > report.retired); // stalls exist
        assert_eq!(report.vector_retired, 0);
    }

    #[test]
    fn timing_monotonic_and_cache_counted() {
        let p = assemble(SUM_LOOP);
        let mut m = Machine::new(&p, MachineConfig::scalar_only());
        let report = m.run().unwrap();
        assert!(report.dcache.accesses >= 8);
        assert!(report.icache.accesses >= report.scalar_retired);
        assert!(report.dcache.misses() >= 1); // cold miss on A
    }

    #[test]
    fn cycle_limit_guards_infinite_loops() {
        let p = assemble(".text\nmain:\n    b main\n");
        let mut cfg = MachineConfig::scalar_only();
        cfg.max_cycles = 10_000;
        let mut m = Machine::new(&p, cfg);
        assert!(m.run().is_err());
    }
}
