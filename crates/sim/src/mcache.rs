//! The microcode cache (paper §4.1 / Figure 1): translated SIMD loops,
//! indexed by the outlined function's entry PC, with LRU replacement.
//!
//! The paper sizes it at 8 entries × 64 instructions (2 KB) and shows this
//! captures the hot-loop working set of every benchmark.

use std::collections::BTreeMap;

use liquid_simd_isa::Inst;

use crate::meta::InstMeta;

/// Microcode-cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McacheStats {
    /// Lookups performed (one per call of a candidate function).
    pub lookups: u64,
    /// Lookups that found valid, ready microcode.
    pub hits: u64,
    /// Lookups that found an entry still being "written" (translation
    /// latency not yet elapsed).
    pub pending: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by capacity.
    pub evictions: u64,
    /// Tag-conflict replacements: inserts that found microcode already
    /// resident for the same function and overwrote it in place (a retry
    /// after an external abort, or a retranslation at a new width).
    pub conflicts: u64,
}

/// Per-function microcode-cache statistics. Keyed by the function's entry
/// PC and kept *across* evictions, so a thrashing entry's history survives
/// its residency.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct McacheEntryStats {
    /// Lookups that found this function's microcode ready.
    pub hits: u64,
    /// Lookups for this function that found nothing resident.
    pub misses: u64,
    /// Lookups that found this function's entry still being written.
    pub pending: u64,
    /// Times this function's microcode was inserted (reinserts included).
    pub inserts: u64,
    /// Times this function was evicted by capacity.
    pub evictions: u64,
    /// Times a fresh insert for this function found its old microcode still
    /// resident and replaced it in place (tag conflict).
    pub conflicts: u64,
    /// Entry PC of the function whose insert evicted this one, once per
    /// eviction, in order — the evictor identity.
    pub evicted_by: Vec<u32>,
    /// Microcode length of the most recent insert.
    pub uops: usize,
}

#[derive(Clone, Debug)]
struct Entry {
    func_pc: u32,
    code: Vec<Inst>,
    /// Predecoded static metadata, parallel to `code` (the simulator's
    /// fast path; computed once at insert, never per retire).
    meta: Vec<InstMeta>,
    valid_at: u64,
    last_use: u64,
    /// Monotonic code generation: bumped on every insert, including
    /// in-place overwrites, so anything derived from this entry's code
    /// (lowered superblocks) can detect that the code changed underneath
    /// it. Two entries never share a generation.
    gen: u64,
}

/// Result of a microcode-cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// No entry for this function.
    Miss,
    /// An entry exists but its translation latency has not elapsed.
    Pending,
    /// Ready microcode (index into the cache; fetch with [`Mcache::code`]).
    Hit(usize),
}

/// The microcode cache.
#[derive(Clone, Debug)]
pub struct Mcache {
    entries: Vec<Entry>,
    capacity: usize,
    max_uops: usize,
    tick: u64,
    stats: McacheStats,
    per_entry: BTreeMap<u32, McacheEntryStats>,
    /// Generation source for [`Entry::gen`].
    next_gen: u64,
    /// Invalidation epoch: bumped whenever resident code changes or
    /// disappears (insert, overwrite, eviction, flush). Derived structures
    /// (the superblock backend's block cache) compare this against the
    /// epoch they last synchronised at and re-validate on any change.
    epoch: u64,
}

impl Mcache {
    /// Creates an empty cache of `capacity` entries of `max_uops`
    /// instructions each.
    #[must_use]
    pub fn new(capacity: usize, max_uops: usize) -> Mcache {
        Mcache {
            entries: Vec::with_capacity(capacity),
            capacity,
            max_uops,
            tick: 0,
            stats: McacheStats::default(),
            per_entry: BTreeMap::new(),
            next_gen: 0,
            epoch: 0,
        }
    }

    /// The invalidation epoch: changes exactly when resident code changes
    /// (insert, in-place overwrite, eviction, or flush). Lookups never move
    /// it.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The code generation of entry `idx` (from [`Lookup::Hit`]). Each
    /// insert — including an in-place overwrite of the same function —
    /// gets a fresh generation, so `(func_pc, gen)` uniquely names one
    /// immutable code image for the cache's whole lifetime.
    #[must_use]
    pub fn gen(&self, idx: usize) -> u64 {
        self.entries[idx].gen
    }

    /// The generation of the resident entry for `func_pc`, if any — the
    /// revalidation probe for derived structures (no LRU tick, no stats).
    #[must_use]
    pub fn resident_gen(&self, func_pc: u32) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.func_pc == func_pc)
            .map(|e| e.gen)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> McacheStats {
        self.stats
    }

    /// Per-function statistics, keyed by entry PC. Entries persist across
    /// evictions and flushes.
    #[must_use]
    pub fn entry_stats(&self) -> &BTreeMap<u32, McacheEntryStats> {
        &self.per_entry
    }

    /// Storage size in bytes (entries × instructions × 4), the paper's
    /// "2 KB SRAM" figure at the default 8 × 64 geometry.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.capacity * self.max_uops * 4
    }

    /// Looks up microcode for a function entry at the current cycle.
    pub fn lookup(&mut self, func_pc: u32, now: u64) -> Lookup {
        self.stats.lookups += 1;
        self.tick += 1;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.func_pc == func_pc {
                if e.valid_at <= now {
                    e.last_use = self.tick;
                    self.stats.hits += 1;
                    self.per_entry.entry(func_pc).or_default().hits += 1;
                    return Lookup::Hit(i);
                }
                self.stats.pending += 1;
                self.per_entry.entry(func_pc).or_default().pending += 1;
                return Lookup::Pending;
            }
        }
        self.per_entry.entry(func_pc).or_default().misses += 1;
        Lookup::Miss
    }

    /// The microcode of entry `idx` (from [`Lookup::Hit`]).
    #[must_use]
    pub fn code(&self, idx: usize) -> &[Inst] {
        &self.entries[idx].code
    }

    /// The function entry PC of entry `idx` (from [`Lookup::Hit`]).
    #[must_use]
    pub fn func_pc(&self, idx: usize) -> u32 {
        self.entries[idx].func_pc
    }

    /// The predecoded metadata of entry `idx`, parallel to
    /// [`Mcache::code`].
    #[must_use]
    pub fn meta(&self, idx: usize) -> &[InstMeta] {
        &self.entries[idx].meta
    }

    /// Inserts translated microcode with its predecoded metadata, evicting
    /// the LRU entry if full; returns the evicted function's entry PC, if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the per-entry capacity (the translator's
    /// buffer enforces the same limit, so this indicates a logic error) or
    /// if `meta` is not parallel to `code`.
    pub fn insert(
        &mut self,
        func_pc: u32,
        code: Vec<Inst>,
        meta: Vec<InstMeta>,
        valid_at: u64,
    ) -> Option<u32> {
        assert!(
            code.len() <= self.max_uops,
            "microcode of {} uops exceeds entry capacity {}",
            code.len(),
            self.max_uops
        );
        assert_eq!(code.len(), meta.len(), "metadata must be parallel to code");
        self.tick += 1;
        self.stats.inserts += 1;
        self.epoch += 1;
        self.next_gen += 1;
        let gen = self.next_gen;
        {
            let es = self.per_entry.entry(func_pc).or_default();
            es.inserts += 1;
            es.uops = code.len();
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.func_pc == func_pc) {
            self.stats.conflicts += 1;
            self.per_entry.entry(func_pc).or_default().conflicts += 1;
            e.code = code;
            e.meta = meta;
            e.valid_at = valid_at;
            e.last_use = self.tick;
            e.gen = gen;
            return None;
        }
        let mut evicted = None;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            let victim = self.entries.swap_remove(lru).func_pc;
            self.stats.evictions += 1;
            let vs = self.per_entry.entry(victim).or_default();
            vs.evictions += 1;
            vs.evicted_by.push(func_pc);
            evicted = Some(victim);
        }
        self.entries.push(Entry {
            func_pc,
            code,
            meta,
            valid_at,
            last_use: self.tick,
            gen,
        });
        evicted
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Invalidates everything (context switch); returns how many entries
    /// were resident.
    pub fn flush(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        if n > 0 {
            self.epoch += 1;
        }
        n
    }

    /// Snapshots the resident microcode: `(function pc, code)` pairs. Used
    /// to model a machine with *built-in* ISA support (paper Figure 6
    /// callout): harvest after one run, preload into a fresh machine.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u32, Vec<Inst>)> {
        self.entries
            .iter()
            .map(|e| (e.func_pc, e.code.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use crate::meta::meta_of_code;
    use liquid_simd_isa::ScalarInst;

    fn code(n: usize) -> Vec<Inst> {
        vec![Inst::S(ScalarInst::Nop); n]
    }

    fn meta(code: &[Inst]) -> Vec<InstMeta> {
        meta_of_code(code, &LatencyModel::default(), 8)
    }

    fn insert(mc: &mut Mcache, pc: u32, code: Vec<Inst>, valid_at: u64) -> Option<u32> {
        let m = meta(&code);
        mc.insert(pc, code, m, valid_at)
    }

    #[test]
    fn pending_until_valid_at() {
        let mut mc = Mcache::new(2, 64);
        insert(&mut mc, 10, code(3), 100);
        assert_eq!(mc.lookup(10, 50), Lookup::Pending);
        assert_eq!(mc.lookup(10, 100), Lookup::Hit(0));
        assert_eq!(mc.code(0).len(), 3);
        assert_eq!(mc.stats().pending, 1);
        assert_eq!(mc.stats().hits, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut mc = Mcache::new(2, 64);
        insert(&mut mc, 1, code(1), 0);
        insert(&mut mc, 2, code(1), 0);
        assert_eq!(mc.lookup(1, 10), Lookup::Hit(0)); // touch 1
        insert(&mut mc, 3, code(1), 0); // evicts 2
        assert_eq!(mc.lookup(2, 10), Lookup::Miss);
        assert!(matches!(mc.lookup(1, 10), Lookup::Hit(_)));
        assert!(matches!(mc.lookup(3, 10), Lookup::Hit(_)));
        assert_eq!(mc.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut mc = Mcache::new(2, 64);
        insert(&mut mc, 1, code(1), 0);
        insert(&mut mc, 1, code(5), 7);
        assert_eq!(mc.len(), 1);
        assert_eq!(mc.lookup(1, 3), Lookup::Pending);
        let Lookup::Hit(i) = mc.lookup(1, 7) else {
            panic!("expected hit")
        };
        assert_eq!(mc.code(i).len(), 5);
        assert_eq!(mc.stats().conflicts, 1);
        assert_eq!(mc.entry_stats()[&1].conflicts, 1);
    }

    #[test]
    fn paper_geometry_is_2kb() {
        let mc = Mcache::new(8, 64);
        assert_eq!(mc.storage_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "exceeds entry capacity")]
    fn oversized_microcode_panics() {
        let mut mc = Mcache::new(1, 4);
        insert(&mut mc, 1, code(5), 0);
    }

    #[test]
    fn generations_and_epoch_track_every_code_change() {
        let mut mc = Mcache::new(2, 64);
        assert_eq!(mc.epoch(), 0);
        insert(&mut mc, 1, code(1), 0);
        let e1 = mc.epoch();
        assert!(e1 > 0);
        let g1 = mc.resident_gen(1).unwrap();
        // In-place overwrite must change the generation AND the epoch.
        insert(&mut mc, 1, code(2), 0);
        let g2 = mc.resident_gen(1).unwrap();
        assert_ne!(g1, g2);
        assert!(mc.epoch() > e1);
        // A lookup moves neither.
        let before = mc.epoch();
        let Lookup::Hit(idx) = mc.lookup(1, 10) else {
            panic!("expected hit")
        };
        assert_eq!(mc.epoch(), before);
        assert_eq!(mc.gen(idx), g2);
        // Eviction bumps the epoch and clears the victim's residency.
        // Inserts tick the LRU clock too, so 1 (last touched by the lookup
        // above, before 2's insert) is the LRU victim.
        insert(&mut mc, 2, code(1), 0);
        insert(&mut mc, 3, code(1), 0); // capacity 2: evicts LRU (1)
        assert!(mc.epoch() > before);
        assert_eq!(mc.resident_gen(1), None);
        // Distinct entries never share a generation.
        assert_ne!(mc.resident_gen(2), mc.resident_gen(3));
        // Flush bumps the epoch once more.
        let before = mc.epoch();
        mc.flush();
        assert!(mc.epoch() > before);
        assert_eq!(mc.resident_gen(2), None);
    }

    #[test]
    fn per_entry_stats_survive_eviction_and_name_the_evictor() {
        let mut mc = Mcache::new(1, 64);
        assert_eq!(mc.lookup(1, 0), Lookup::Miss);
        insert(&mut mc, 1, code(3), 0);
        assert!(matches!(mc.lookup(1, 10), Lookup::Hit(_)));
        insert(&mut mc, 2, code(2), 0); // evicts 1
        assert_eq!(mc.lookup(1, 20), Lookup::Miss);
        let one = &mc.entry_stats()[&1];
        assert_eq!((one.hits, one.misses, one.inserts), (1, 2, 1));
        assert_eq!(one.evictions, 1);
        assert_eq!(one.evicted_by, vec![2]);
        assert_eq!(one.uops, 3);
        let two = &mc.entry_stats()[&2];
        assert_eq!((two.inserts, two.evictions, two.uops), (1, 0, 2));
    }
}
