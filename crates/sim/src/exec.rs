//! Functional execution of scalar and vector instructions.

use std::error::Error;
use std::fmt;

use liquid_simd_isa::{Base, ElemType, Inst, Operand2, Program, RedOp, ScalarInst, VectorInst};
use liquid_simd_mem::{MemError, Memory};

use crate::regfile::RegFile;

/// A simulation fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A memory access fell outside mapped memory.
    Mem(MemError),
    /// An architectural fault (bad symbol, vector op without accelerator,
    /// wild control transfer, cycle-limit exceeded).
    Fault {
        /// Code index of the faulting instruction.
        pc: u32,
        /// Explanation.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(e) => write!(f, "memory fault: {e}"),
            SimError::Fault { pc, what } => write!(f, "fault at @{pc}: {what}"),
        }
    }
}

impl Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> SimError {
        SimError::Mem(e)
    }
}

/// Where control goes after an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Fall through.
    Next,
    /// Branch to a code index.
    Jump(u32),
    /// Procedure call (`lr` already written).
    Call {
        /// Callee entry.
        target: u32,
        /// Whether the call carries the `bl.v` translatable marker.
        vectorizable: bool,
    },
    /// Return through the link register (or microcode end).
    Return,
    /// Stop simulation.
    Halt,
}

/// Everything the timing model and the translator tap need to know about
/// one executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Control disposition.
    pub control: Control,
    /// Integer result (for the translator's `Data` input).
    pub value: Option<i64>,
    /// Whether the predicate passed.
    pub executed: bool,
    /// For branches: taken?
    pub taken: bool,
    /// Memory touched: `(addr, len, is_write)`.
    pub mem: Option<(u32, u32, bool)>,
}

impl Outcome {
    fn next() -> Outcome {
        Outcome {
            control: Control::Next,
            value: None,
            executed: true,
            taken: false,
            mem: None,
        }
    }
}

fn base_addr(base: Base, regs: &RegFile, prog: &Program, pc: u32) -> Result<u32, SimError> {
    match base {
        Base::Reg(r) => Ok(regs.r[r.index() as usize]),
        Base::Sym(s) => Ok(prog
            .symbol(s)
            .map_err(|e| SimError::Fault {
                pc,
                what: e.to_string(),
            })?
            .addr),
    }
}

// ALU / lane semantics are defined once, in the ISA crate
// (`AluOp::eval`, `FpOp::eval`, `VAluOp::eval_lane`, `RedOp::eval_*`), so
// the simulator and the compiler's gold evaluator cannot drift apart.

pub(crate) fn load_extend(
    mem: &Memory,
    addr: u32,
    width: u32,
    signed: bool,
) -> Result<(u32, i64), SimError> {
    if signed || width == 4 {
        let v = mem.read_signed(addr, width)?;
        Ok((v as u32, i64::from(v)))
    } else {
        let v = mem.read(addr, width)?;
        Ok((v, i64::from(v)))
    }
}

/// Executes one instruction functionally.
///
/// # Errors
///
/// Returns [`SimError`] on memory faults, bad symbols, or vector execution
/// without an accelerator (`lanes == 0`).
#[allow(clippy::too_many_lines)]
pub fn exec(
    inst: &Inst,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut Memory,
    prog: &Program,
    lanes: usize,
) -> Result<Outcome, SimError> {
    match inst {
        Inst::S(s) => exec_scalar(s, pc, regs, mem, prog),
        Inst::V(v) => {
            if lanes < 2 {
                return Err(SimError::Fault {
                    pc,
                    what: format!("vector instruction `{v}` without SIMD accelerator"),
                });
            }
            exec_vector(v, pc, regs, mem, prog, lanes)
        }
    }
}

fn exec_scalar(
    s: &ScalarInst,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut Memory,
    prog: &Program,
) -> Result<Outcome, SimError> {
    let mut out = Outcome::next();
    match *s {
        ScalarInst::MovImm { cond, rd, imm } => {
            out.executed = cond.eval(regs.flags);
            if out.executed {
                regs.r[rd.index() as usize] = imm as u32;
            }
            out.value = Some(i64::from(imm));
        }
        ScalarInst::Mov { cond, rd, rm } => {
            out.executed = cond.eval(regs.flags);
            if out.executed {
                regs.r[rd.index() as usize] = regs.r[rm.index() as usize];
            }
            out.value = Some(i64::from(regs.r[rd.index() as usize] as i32));
        }
        ScalarInst::Alu {
            cond,
            op,
            rd,
            rn,
            op2,
        } => {
            out.executed = cond.eval(regs.flags);
            let b = match op2 {
                Operand2::Reg(r) => regs.r[r.index() as usize] as i32,
                Operand2::Imm(i) => i,
            };
            if out.executed {
                let a = regs.r[rn.index() as usize] as i32;
                let v = op.eval(a, b);
                regs.r[rd.index() as usize] = v as u32;
                out.value = Some(i64::from(v));
            }
        }
        ScalarInst::Cmp { rn, op2 } => {
            let a = regs.r[rn.index() as usize] as i32;
            let b = match op2 {
                Operand2::Reg(r) => regs.r[r.index() as usize] as i32,
                Operand2::Imm(i) => i,
            };
            regs.flags = liquid_simd_isa::Flags::from_cmp(a, b);
        }
        ScalarInst::FAlu { op, fd, fn_, fm } => {
            let v = op.eval(regs.f32(fn_.index()), regs.f32(fm.index()));
            regs.set_f32(fd.index(), v);
        }
        ScalarInst::FMov { cond, fd, fm } => {
            if cond.eval(regs.flags) {
                regs.f[fd.index() as usize] = regs.f[fm.index() as usize];
            } else {
                out.executed = false;
            }
        }
        ScalarInst::LdInt {
            width,
            signed,
            rd,
            base,
            index,
        } => {
            let b = base_addr(base, regs, prog, pc)?;
            let w = width.bytes();
            let addr = b.wrapping_add(regs.r[index.index() as usize].wrapping_mul(w));
            let (raw, value) = load_extend(mem, addr, w, signed)?;
            regs.r[rd.index() as usize] = raw;
            out.value = Some(value);
            out.mem = Some((addr, w, false));
        }
        ScalarInst::StInt {
            width,
            rs,
            base,
            index,
        } => {
            let b = base_addr(base, regs, prog, pc)?;
            let w = width.bytes();
            let addr = b.wrapping_add(regs.r[index.index() as usize].wrapping_mul(w));
            mem.write(addr, w, regs.r[rs.index() as usize])?;
            out.mem = Some((addr, w, true));
        }
        ScalarInst::LdF { fd, base, index } => {
            let b = base_addr(base, regs, prog, pc)?;
            let addr = b.wrapping_add(regs.r[index.index() as usize].wrapping_mul(4));
            regs.f[fd.index() as usize] = mem.read(addr, 4)?;
            out.mem = Some((addr, 4, false));
        }
        ScalarInst::StF { fs, base, index } => {
            let b = base_addr(base, regs, prog, pc)?;
            let addr = b.wrapping_add(regs.r[index.index() as usize].wrapping_mul(4));
            mem.write(addr, 4, regs.f[fs.index() as usize])?;
            out.mem = Some((addr, 4, true));
        }
        ScalarInst::B { cond, target } => {
            out.taken = cond.eval(regs.flags);
            if out.taken {
                out.control = Control::Jump(target);
            }
        }
        ScalarInst::Bl {
            target,
            vectorizable,
        } => {
            regs.r[14] = pc + 1;
            out.taken = true;
            out.control = Control::Call {
                target,
                vectorizable,
            };
        }
        ScalarInst::Ret => {
            out.taken = true;
            out.control = Control::Return;
        }
        ScalarInst::Halt => {
            out.control = Control::Halt;
        }
        ScalarInst::Nop => {}
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn exec_vector(
    v: &VectorInst,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut Memory,
    prog: &Program,
    lanes: usize,
) -> Result<Outcome, SimError> {
    let mut out = Outcome::next();
    match *v {
        VectorInst::VLd {
            elem,
            signed,
            vd,
            base,
            index,
        } => {
            let b = base_addr(base, regs, prog, pc)?;
            let esz = elem.bytes();
            let start = b.wrapping_add(regs.r[index.index() as usize].wrapping_mul(esz));
            for i in 0..lanes {
                let addr = start + i as u32 * esz;
                let (raw, _) = load_extend(mem, addr, esz, signed)?;
                regs.v[vd.index() as usize][i] = raw;
            }
            out.mem = Some((start, esz * lanes as u32, false));
        }
        VectorInst::VSt {
            elem,
            vs,
            base,
            index,
        } => {
            let b = base_addr(base, regs, prog, pc)?;
            let esz = elem.bytes();
            let start = b.wrapping_add(regs.r[index.index() as usize].wrapping_mul(esz));
            for i in 0..lanes {
                let addr = start + i as u32 * esz;
                mem.write(addr, esz, regs.v[vs.index() as usize][i])?;
            }
            out.mem = Some((start, esz * lanes as u32, true));
        }
        VectorInst::VAlu {
            op,
            elem,
            vd,
            vn,
            vm,
        } => {
            for i in 0..lanes {
                let a = regs.v[vn.index() as usize][i];
                let b = regs.v[vm.index() as usize][i];
                regs.v[vd.index() as usize][i] = op.eval_lane(elem, a, b);
            }
        }
        VectorInst::VAluImm {
            op,
            elem,
            vd,
            vn,
            imm,
        } => {
            for i in 0..lanes {
                let a = regs.v[vn.index() as usize][i];
                regs.v[vd.index() as usize][i] = op.eval_lane(elem, a, imm as u32);
            }
        }
        VectorInst::VAluConst {
            op,
            elem,
            vd,
            vn,
            cnst,
        } => {
            let sym = prog.symbol(cnst).map_err(|e| SimError::Fault {
                pc,
                what: e.to_string(),
            })?;
            let esz = elem.bytes();
            let period = (sym.size / esz).max(1);
            for i in 0..lanes {
                let addr = sym.addr + (i as u32 % period) * esz;
                let (raw, _) = load_extend(mem, addr, esz, elem != ElemType::F32)?;
                let a = regs.v[vn.index() as usize][i];
                regs.v[vd.index() as usize][i] = op.eval_lane(elem, a, raw);
            }
            out.mem = Some((sym.addr, esz * period.min(lanes as u32), false));
        }
        VectorInst::VAluScalar {
            op,
            elem,
            vd,
            vn,
            src,
        } => {
            let broadcast = match src {
                liquid_simd_isa::ScalarSrc::R(r) => regs.r[r.index() as usize],
                liquid_simd_isa::ScalarSrc::F(fr) => regs.f[fr.index() as usize],
            };
            for i in 0..lanes {
                let a = regs.v[vn.index() as usize][i];
                regs.v[vd.index() as usize][i] = op.eval_lane(elem, a, broadcast);
            }
        }
        VectorInst::VRedI {
            op,
            elem: _,
            rd,
            vn,
        } => {
            let mut acc = regs.r[rd.index() as usize] as i32;
            for i in 0..lanes {
                let lane = regs.v[vn.index() as usize][i] as i32;
                acc = match op {
                    RedOp::Min => acc.min(lane),
                    RedOp::Max => acc.max(lane),
                    RedOp::Sum => acc.wrapping_add(lane),
                };
            }
            regs.r[rd.index() as usize] = acc as u32;
            out.value = Some(i64::from(acc));
        }
        VectorInst::VRedF { op, fd, vn } => {
            let mut acc = regs.f32(fd.index());
            for i in 0..lanes {
                let lane = f32::from_bits(regs.v[vn.index() as usize][i]);
                acc = match op {
                    RedOp::Min => acc.min(lane),
                    RedOp::Max => acc.max(lane),
                    RedOp::Sum => acc + lane,
                };
            }
            regs.set_f32(fd.index(), acc);
        }
        VectorInst::VPerm {
            kind,
            elem: _,
            vd,
            vn,
        } => {
            let block = kind.block() as usize;
            if block > lanes || !lanes.is_multiple_of(block) {
                return Err(SimError::Fault {
                    pc,
                    what: format!("permutation block {block} not executable at {lanes} lanes"),
                });
            }
            // Snapshot the source into the register file's scratch lane
            // buffer (`vd` may alias `vn`) — no per-step heap allocation.
            regs.scratch.copy_from_slice(&regs.v[vn.index() as usize]);
            let dst = &mut regs.v[vd.index() as usize];
            for (i, d) in dst.iter_mut().enumerate() {
                let base = i - (i % block);
                *d = regs.scratch[base + kind.source_index(i)];
            }
        }
        VectorInst::VSplat { elem: _, vd, imm } => {
            for lane in &mut regs.v[vd.index() as usize] {
                *lane = imm as u32;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_simd_isa::{AluOp, Cond, FReg, MemWidth, PermKind, Reg, SymId, VAluOp, VReg};

    fn setup(lanes: usize) -> (RegFile, Memory, Program) {
        let regs = RegFile::new(lanes);
        let mem = Memory::new(0x1000, 256);
        let prog = Program {
            code: vec![],
            data: vec![],
            symbols: vec![liquid_simd_isa::Symbol {
                name: "a".into(),
                addr: 0x1000,
                size: 64,
                elem_bytes: 4,
            }],
            entry: 0,
            data_base: 0x1000,
            labels: vec![],
        };
        (regs, mem, prog)
    }

    #[test]
    fn scalar_alu_and_flags() {
        let (mut regs, mut mem, prog) = setup(0);
        regs.r[2] = 7;
        let add = Inst::S(ScalarInst::Alu {
            cond: Cond::Al,
            op: AluOp::Add,
            rd: Reg::R1,
            rn: Reg::R2,
            op2: Operand2::Imm(5),
        });
        let o = exec(&add, 0, &mut regs, &mut mem, &prog, 0).unwrap();
        assert_eq!(regs.r[1], 12);
        assert_eq!(o.value, Some(12));

        let cmp = Inst::S(ScalarInst::Cmp {
            rn: Reg::R1,
            op2: Operand2::Imm(20),
        });
        exec(&cmp, 0, &mut regs, &mut mem, &prog, 0).unwrap();
        let movgt = Inst::S(ScalarInst::MovImm {
            cond: Cond::Gt,
            rd: Reg::R1,
            imm: 99,
        });
        let o = exec(&movgt, 0, &mut regs, &mut mem, &prog, 0).unwrap();
        assert!(!o.executed);
        assert_eq!(regs.r[1], 12); // predicate failed, unchanged
    }

    #[test]
    fn element_indexed_addressing() {
        let (mut regs, mut mem, prog) = setup(0);
        mem.write(0x1000 + 3 * 2, 2, 0x8001).unwrap();
        regs.r[0] = 3;
        let ld = Inst::S(ScalarInst::LdInt {
            width: MemWidth::H,
            signed: true,
            rd: Reg::R5,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        });
        let o = exec(&ld, 0, &mut regs, &mut mem, &prog, 0).unwrap();
        assert_eq!(regs.r[5] as i32, -32767); // sign-extended halfword 0x8001
        assert_eq!(o.value, Some(i64::from(0x8001u16 as i16)));
        assert_eq!(o.mem, Some((0x1006, 2, false)));
    }

    #[test]
    fn vector_load_op_store_roundtrip() {
        let (mut regs, mut mem, prog) = setup(4);
        for i in 0..4u32 {
            mem.write(0x1000 + i * 4, 4, i + 1).unwrap();
        }
        regs.r[0] = 0;
        let vld = Inst::V(VectorInst::VLd {
            elem: ElemType::I32,
            signed: false,
            vd: VReg::V1,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        });
        exec(&vld, 0, &mut regs, &mut mem, &prog, 4).unwrap();
        assert_eq!(regs.v[1], vec![1, 2, 3, 4]);

        let vadd = Inst::V(VectorInst::VAluImm {
            op: VAluOp::Add,
            elem: ElemType::I32,
            vd: VReg::V1,
            vn: VReg::V1,
            imm: 10,
        });
        exec(&vadd, 0, &mut regs, &mut mem, &prog, 4).unwrap();
        assert_eq!(regs.v[1], vec![11, 12, 13, 14]);

        let vst = Inst::V(VectorInst::VSt {
            elem: ElemType::I32,
            vs: VReg::V1,
            base: Base::Sym(SymId::new(0)),
            index: Reg::R0,
        });
        let o = exec(&vst, 0, &mut regs, &mut mem, &prog, 4).unwrap();
        assert_eq!(o.mem, Some((0x1000, 16, true)));
        assert_eq!(mem.read(0x100C, 4).unwrap(), 14);
    }

    #[test]
    fn saturating_semantics_match_the_idiom() {
        let (mut regs, mut mem, prog) = setup(2);
        regs.v[0] = vec![200, 10];
        regs.v[1] = vec![100, 5];
        let vq = Inst::V(VectorInst::VAlu {
            op: VAluOp::SatAdd,
            elem: ElemType::I8,
            vd: VReg::V2,
            vn: VReg::V0,
            vm: VReg::V1,
        });
        exec(&vq, 0, &mut regs, &mut mem, &prog, 2).unwrap();
        assert_eq!(regs.v[2], vec![255, 15]);

        let vqs = Inst::V(VectorInst::VAlu {
            op: VAluOp::SatSub,
            elem: ElemType::I8,
            vd: VReg::V2,
            vn: VReg::V1,
            vm: VReg::V0,
        });
        exec(&vqs, 0, &mut regs, &mut mem, &prog, 2).unwrap();
        assert_eq!(regs.v[2], vec![0, 0]);
    }

    #[test]
    fn reductions_fold_into_scalar_registers() {
        let (mut regs, mut mem, prog) = setup(4);
        regs.r[1] = 100;
        regs.v[3] = vec![5u32, 200, 7, 50];
        let vmin = Inst::V(VectorInst::VRedI {
            op: RedOp::Min,
            elem: ElemType::I32,
            rd: Reg::R1,
            vn: VReg::V3,
        });
        exec(&vmin, 0, &mut regs, &mut mem, &prog, 4).unwrap();
        assert_eq!(regs.r[1], 5);

        regs.set_f32(2, 1.0);
        regs.v[4] = vec![
            2.0f32.to_bits(),
            3.0f32.to_bits(),
            4.0f32.to_bits(),
            5.0f32.to_bits(),
        ];
        let vsum = Inst::V(VectorInst::VRedF {
            op: RedOp::Sum,
            fd: FReg::F2,
            vn: VReg::V4,
        });
        exec(&vsum, 0, &mut regs, &mut mem, &prog, 4).unwrap();
        assert_eq!(regs.f32(2), 15.0);
    }

    #[test]
    fn permutation_applies_blocked() {
        let (mut regs, mut mem, prog) = setup(8);
        regs.v[0] = (0..8).collect();
        let perm = Inst::V(VectorInst::VPerm {
            kind: PermKind::Bfly { block: 4 },
            elem: ElemType::I32,
            vd: VReg::V1,
            vn: VReg::V0,
        });
        exec(&perm, 0, &mut regs, &mut mem, &prog, 8).unwrap();
        assert_eq!(regs.v[1], vec![2, 3, 0, 1, 6, 7, 4, 5]);
    }

    #[test]
    fn permutation_block_wider_than_lanes_faults() {
        let (mut regs, mut mem, prog) = setup(4);
        let perm = Inst::V(VectorInst::VPerm {
            kind: PermKind::Bfly { block: 8 },
            elem: ElemType::I32,
            vd: VReg::V1,
            vn: VReg::V0,
        });
        assert!(exec(&perm, 0, &mut regs, &mut mem, &prog, 4).is_err());
    }

    #[test]
    fn vector_without_accelerator_faults() {
        let (mut regs, mut mem, prog) = setup(0);
        let vsplat = Inst::V(VectorInst::VSplat {
            elem: ElemType::I32,
            vd: VReg::V0,
            imm: 1,
        });
        assert!(exec(&vsplat, 0, &mut regs, &mut mem, &prog, 0).is_err());
    }

    #[test]
    fn call_and_return_control() {
        let (mut regs, mut mem, prog) = setup(0);
        let bl = Inst::S(ScalarInst::Bl {
            target: 40,
            vectorizable: true,
        });
        let o = exec(&bl, 7, &mut regs, &mut mem, &prog, 0).unwrap();
        assert_eq!(
            o.control,
            Control::Call {
                target: 40,
                vectorizable: true
            }
        );
        assert_eq!(regs.r[14], 8);
        let o = exec(&Inst::S(ScalarInst::Ret), 40, &mut regs, &mut mem, &prog, 0).unwrap();
        assert_eq!(o.control, Control::Return);
    }
}
